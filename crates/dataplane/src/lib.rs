//! Reference interpreter for the NetDebug pipeline IR.
//!
//! This crate is the *specification oracle* of the reproduction: it executes
//! compiled P4 programs with P4-16 semantics, faithfully — in particular the
//! `reject` parser transition **drops** packets here, which is the behaviour
//! the paper's SDNet backend got wrong. The hardware device model in
//! `netdebug-hw` embeds this interpreter and then (deliberately) perturbs
//! it; NetDebug's job is to detect the difference.
//!
//! Two engines implement the semantics ([`Engine`]): the default flat
//! bytecode engine compiled at load time ([`compile`]) and the
//! tree-walking reference interpreter it is differentially validated
//! against, bit for bit, by the parity property tests. The bytecode is
//! run through a peephole/superinstruction optimization pipeline
//! ([`PassConfig`], module [`opt`]) and can be inspected with
//! [`Dataplane::disassemble`].
//!
//! ```
//! use netdebug_dataplane::Dataplane;
//! use netdebug_packet::{PacketBuilder, EthernetAddress};
//!
//! let ir = netdebug_p4::compile(netdebug_p4::corpus::REFLECTOR).unwrap();
//! let mut dp = Dataplane::new(ir);
//! let frame = PacketBuilder::ethernet(
//!     EthernetAddress::new(2, 0, 0, 0, 0, 1),
//!     EthernetAddress::new(2, 0, 0, 0, 0, 2),
//! ).payload(b"hi").build();
//! let (verdict, trace) = dp.process(3, &frame, 0);
//! assert!(verdict.is_forwarded());          // reflected…
//! assert_eq!(trace.states_visited(), ["start"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod cache;
pub mod compile;
pub mod control;
pub mod disasm;
pub mod externs;
pub mod interp;
pub mod opt;
mod pool;
pub mod table;
pub mod trace;

pub use cache::CacheStats;
pub use compile::CompiledProgram;
pub use control::{ControlError, ControlPlane};
pub use disasm::Disassembly;
pub use externs::MeterConfig;
pub use interp::{Dataplane, DataplaneCheckpoint, Engine, FLOOD_PORT};
pub use opt::PassConfig;
pub use table::{
    lpm_pattern, EntryRef, EntrySnapshot, LookupIndex, RuntimeEntry, TableError, TableState,
    TableStats, TableView,
};
pub use trace::{
    CollectSink, DropReason, LazyTrace, NullSink, Trace, TraceEvent, TraceName, TraceSink, Verdict,
    VerdictSummary,
};

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_p4::corpus;
    use netdebug_packet::tcp::TcpFlags;
    use netdebug_packet::*;

    fn macs() -> (EthernetAddress, EthernetAddress) {
        (
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
    }

    fn ipv4_frame(dst: Ipv4Address, ttl: u8) -> Vec<u8> {
        let (s, d) = macs();
        PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Address::new(10, 0, 0, 1), dst)
            .ttl(ttl)
            .udp(1000, 2000)
            .payload(b"payload")
            .build()
    }

    fn router() -> Dataplane {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let mut dp = Dataplane::new(ir);
        // 10.0.0.0/8 -> port 1, 10.1.0.0/16 -> port 2.
        dp.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dp.install_lpm("ipv4_lpm", 0x0A01_0000, 16, "ipv4_forward", vec![0xBB, 2])
            .unwrap();
        dp
    }

    #[test]
    fn reflector_swaps_and_bounces() {
        let ir = netdebug_p4::compile(corpus::REFLECTOR).unwrap();
        let mut dp = Dataplane::new(ir);
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d).payload(b"x").build();
        let (verdict, _) = dp.process(2, &frame, 0);
        match verdict {
            Verdict::Forward { port, data } => {
                assert_eq!(port, 2, "must bounce out of the ingress port");
                let eth = EthernetFrame::new_checked(&data[..]).unwrap();
                assert_eq!(eth.dst_addr(), s, "MACs must be swapped");
                assert_eq!(eth.src_addr(), d);
                assert_eq!(eth.payload(), b"x");
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn router_longest_prefix_and_ttl() {
        let mut dp = router();
        let (verdict, trace) = dp.process(0, &ipv4_frame(Ipv4Address::new(10, 1, 2, 3), 64), 0);
        match verdict {
            Verdict::Forward { port, data } => {
                assert_eq!(port, 2, "10.1/16 must win over 10/8");
                let eth = EthernetFrame::new_checked(&data[..]).unwrap();
                let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
                assert_eq!(ip.ttl(), 63, "TTL must be decremented");
                assert_eq!(
                    eth.dst_addr(),
                    EthernetAddress::new(0, 0, 0, 0, 0, 0xBB),
                    "next-hop MAC rewritten from action arg"
                );
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(trace.tables_applied(), ["ipv4_lpm"]);
        assert_eq!(trace.states_visited(), ["start", "parse_ipv4"]);

        let (verdict, _) = dp.process(0, &ipv4_frame(Ipv4Address::new(10, 9, 9, 9), 64), 0);
        assert!(matches!(verdict, Verdict::Forward { port: 1, .. }));
    }

    #[test]
    fn router_drops_on_miss_ttl_zero_and_non_ip() {
        let mut dp = router();
        // Miss -> default drop action.
        let (v, _) = dp.process(0, &ipv4_frame(Ipv4Address::new(192, 168, 0, 1), 64), 0);
        assert_eq!(v, Verdict::Drop(DropReason::ActionDrop));
        // TTL zero dropped before the table.
        let (v, t) = dp.process(0, &ipv4_frame(Ipv4Address::new(10, 0, 0, 5), 0), 0);
        assert_eq!(v, Verdict::Drop(DropReason::ActionDrop));
        assert!(t.tables_applied().is_empty());
        // Non-IP accepted by parser but dropped by the invalid-header branch.
        let (s, d) = macs();
        let arp = PacketBuilder::ethernet(s, d)
            .ethertype(EtherType::Arp)
            .payload(&[0u8; 28])
            .build();
        let (v, _) = dp.process(0, &arp, 0);
        assert_eq!(v, Verdict::Drop(DropReason::ActionDrop));
    }

    #[test]
    fn router_rejects_bad_version() {
        let mut dp = router();
        let mut frame = ipv4_frame(Ipv4Address::new(10, 0, 0, 5), 64);
        frame[14] = 0x55; // version 5
        let (v, t) = dp.process(0, &frame, 0);
        assert_eq!(
            v,
            Verdict::Drop(DropReason::ParserReject),
            "P4-16 semantics: reject drops the packet"
        );
        assert!(t.parser_rejected());
    }

    #[test]
    fn short_packet_rejected() {
        let mut dp = router();
        let frame = ipv4_frame(Ipv4Address::new(10, 0, 0, 5), 64);
        let (v, _) = dp.process(0, &frame[..20], 0); // eth + 6 bytes of ipv4
        assert_eq!(v, Verdict::Drop(DropReason::PacketTooShort));
    }

    #[test]
    fn l2_switch_floods_and_forwards() {
        let ir = netdebug_p4::compile(corpus::L2_SWITCH).unwrap();
        let mut dp = Dataplane::new(ir);
        let (s, d) = macs();
        let mac_as_u128 = |m: &EthernetAddress| {
            m.as_bytes()
                .iter()
                .fold(0u128, |acc, b| (acc << 8) | u128::from(*b))
        };
        dp.install_exact("dmac", vec![mac_as_u128(&d)], "forward", vec![3])
            .unwrap();
        let frame = PacketBuilder::ethernet(s, d).payload(b"k").build();
        let (v, _) = dp.process(0, &frame, 0);
        assert!(matches!(v, Verdict::Forward { port: 3, .. }));
        // Unknown destination floods.
        let unknown = PacketBuilder::ethernet(s, EthernetAddress::new(9, 9, 9, 9, 9, 9))
            .payload(b"k")
            .build();
        let (v, _) = dp.process(0, &unknown, 0);
        assert!(matches!(v, Verdict::Flood { .. }));
        // Per-port rx counter counted both packets on port 0.
        assert_eq!(dp.counter("port_rx", 0).unwrap().0, 2);
    }

    #[test]
    fn acl_firewall_ternary_rules() {
        let ir = netdebug_p4::compile(corpus::ACL_FIREWALL).unwrap();
        let mut dp = Dataplane::new(ir);
        // Allow 10.0.0.0/8 -> anywhere, TCP, port 443.
        dp.install(
            "acl",
            vec![
                netdebug_p4::ir::IrPattern::Mask {
                    value: 0x0A00_0000,
                    mask: 0xFF00_0000,
                },
                netdebug_p4::ir::IrPattern::Any,
                netdebug_p4::ir::IrPattern::Value(6),
                netdebug_p4::ir::IrPattern::Value(443),
            ],
            "allow",
            vec![2],
            10,
        )
        .unwrap();
        let (s, d) = macs();
        let allowed = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Address::new(10, 5, 5, 5), Ipv4Address::new(1, 2, 3, 4))
            .tcp(
                50000,
                443,
                1,
                TcpFlags {
                    syn: true,
                    ..TcpFlags::default()
                },
            )
            .build();
        let (v, _) = dp.process(0, &allowed, 0);
        assert!(matches!(v, Verdict::Forward { port: 2, .. }));

        let blocked = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Address::new(11, 5, 5, 5), Ipv4Address::new(1, 2, 3, 4))
            .tcp(50000, 443, 1, TcpFlags::default())
            .build();
        let (v, _) = dp.process(0, &blocked, 0);
        assert_eq!(v, Verdict::Drop(DropReason::ActionDrop));
        // The drop counter fired once, on ingress port 0.
        assert_eq!(dp.counter("acl_drops", 0).unwrap().0, 1);
    }

    #[test]
    fn flow_counter_accumulates_bytes() {
        let ir = netdebug_p4::compile(corpus::FLOW_COUNTER).unwrap();
        let mut dp = Dataplane::new(ir);
        dp.install_exact("fwd", vec![0], "forward", vec![1])
            .unwrap();
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d).payload(&[0u8; 50]).build();
        let len = frame.len() as u128;
        for _ in 0..3 {
            let (v, _) = dp.process(0, &frame, 0);
            assert!(v.is_forwarded());
        }
        assert_eq!(dp.register("rx_bytes", 0).unwrap(), 3 * len);
        assert_eq!(dp.counter("rx_pkts", 0).unwrap().0, 3);
    }

    #[test]
    fn rate_limiter_drops_red() {
        let ir = netdebug_p4::compile(corpus::RATE_LIMITER).unwrap();
        let mut dp = Dataplane::new(ir);
        dp.install_exact("fwd", vec![0], "forward", vec![1])
            .unwrap();
        dp.configure_meter(
            "port_meter",
            0,
            MeterConfig {
                cir_per_mcycle: 1,
                cbs: 2,
                pir_per_mcycle: 1,
                pbs: 2,
            },
        )
        .unwrap();
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d).payload(b"x").build();
        let mut forwarded = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match dp.process(0, &frame, 1).0 {
                Verdict::Forward { .. } => forwarded += 1,
                Verdict::Drop(_) => dropped += 1,
                Verdict::Flood { .. } => unreachable!(),
            }
        }
        assert_eq!(forwarded, 2, "burst size admits exactly two packets");
        assert_eq!(dropped, 8);
    }

    #[test]
    fn tunnel_encap_grows_packet() {
        let ir = netdebug_p4::compile(corpus::TUNNEL_ENCAP).unwrap();
        let mut dp = Dataplane::new(ir);
        dp.install_lpm("tunnel_fwd", 0x0A00_0000, 8, "encap", vec![7, 3])
            .unwrap();
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Address::new(1, 1, 1, 1), Ipv4Address::new(10, 0, 0, 9))
            .udp(1, 2)
            .payload(b"data")
            .build();
        let (v, _) = dp.process(0, &frame, 0);
        match v {
            Verdict::Forward { port, data } => {
                assert_eq!(port, 3);
                assert_eq!(data.len(), frame.len() + 4, "tunnel header adds 4 bytes");
                let eth = EthernetFrame::new_checked(&data[..]).unwrap();
                assert_eq!(u16::from(eth.ethertype()), 0x1212);
                // Tunnel header carries the original ethertype.
                assert_eq!(&eth.payload()[0..2], &[0x08, 0x00]);
                assert_eq!(&eth.payload()[2..4], &[0, 7]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn exit_stops_pipeline() {
        let ir = netdebug_p4::compile(corpus::FEATURE_EXIT).unwrap();
        let mut dp = Dataplane::new(ir);
        let mut ok = vec![0xAAu8];
        ok.extend_from_slice(b"rest");
        let (v, _) = dp.process(0, &ok, 0);
        assert!(matches!(v, Verdict::Forward { port: 1, .. }));
        let mut bad = vec![0xFFu8];
        bad.extend_from_slice(b"rest");
        let (v, t) = dp.process(0, &bad, 0);
        assert_eq!(v, Verdict::Drop(DropReason::ActionDrop));
        assert!(t.events.iter().any(|e| matches!(e, TraceEvent::Exit)));
    }

    #[test]
    fn slice_and_concat_semantics() {
        let ir = netdebug_p4::compile(corpus::FEATURE_SLICE_CONCAT).unwrap();
        let mut dp = Dataplane::new(ir);
        // Header: a=0x1234, b=0xABCD, c=0.
        let mut frame = Vec::new();
        frame.extend_from_slice(&[0x12, 0x34]);
        frame.extend_from_slice(&[0xAB, 0xCD]);
        frame.extend_from_slice(&[0, 0, 0, 0]);
        let (v, _) = dp.process(0, &frame, 0);
        match v {
            Verdict::Forward { data, .. } => {
                // c = a ++ b = 0x1234ABCD.
                assert_eq!(&data[4..8], &[0x12, 0x34, 0xAB, 0xCD]);
                // a[7:0] = b[15:8] = 0xAB, so a = 0x12AB.
                assert_eq!(&data[0..2], &[0x12, 0xAB]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deep_parser_visits_all_states() {
        let ir = netdebug_p4::compile(corpus::FEATURE_DEEP_PARSER).unwrap();
        let mut dp = Dataplane::new(ir);
        // next=1 seven times, then next=0: all 8 segments extracted.
        let mut data = Vec::new();
        for i in 0..8 {
            data.push(if i < 7 { 1 } else { 0 });
            data.push(i as u8);
        }
        let (v, t) = dp.process(0, &data, 0);
        assert!(v.is_forwarded());
        assert_eq!(t.states_visited().len(), 8);
    }

    #[test]
    fn table_capacity_override() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let mut dp = Dataplane::with_table_capacities(ir, &[2]);
        dp.install_lpm("ipv4_lpm", 0x0A000000, 8, "drop", vec![])
            .unwrap();
        dp.install_lpm("ipv4_lpm", 0x0B000000, 8, "drop", vec![])
            .unwrap();
        let err = dp
            .install_lpm("ipv4_lpm", 0x0C000000, 8, "drop", vec![])
            .unwrap_err();
        assert!(matches!(
            err,
            ControlError::Table(TableError::Full { capacity: 2 })
        ));
    }

    #[test]
    fn control_plane_errors() {
        let ir = netdebug_p4::compile(corpus::REFLECTOR).unwrap();
        let mut dp = Dataplane::new(ir);
        assert!(matches!(
            dp.install_exact("nope", vec![1], "x", vec![]),
            Err(ControlError::NoSuchTable(_))
        ));
        assert!(dp.counter("nope", 0).is_err());
        assert!(dp.register("nope", 0).is_err());
    }
}
