//! Per-packet execution traces.
//!
//! The reference interpreter records every semantically meaningful step it
//! takes. Traces serve two purposes in the reproduction:
//!
//! 1. they are the "ground truth" NetDebug's fault localisation compares
//!    hardware behaviour against, and
//! 2. they give the *status monitoring* and *functional testing* use-cases
//!    a machine-readable account of where a packet went and why.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An interned name inside a [`TraceEvent`].
///
/// Names of parser states, headers, controls, tables and actions are
/// interned **once at program-compile time** (see `netdebug-dataplane`'s
/// `CompiledProgram`); recording an event then clones a pointer instead of
/// a heap `String` — the difference between traced batch paths allocating
/// two strings per table apply and allocating none. `Arc<str>` compares by
/// content (`PartialEq`), converts from `&str` (tests construct events
/// with `"start".into()` as before) and derefs to `&str` for consumers.
pub type TraceName = Arc<str>;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The parser took a `reject` transition.
    ParserReject,
    /// The packet ran out of bytes mid-extract (P4 `PacketTooShort`).
    PacketTooShort,
    /// An action executed `mark_to_drop()` (and no later egress write).
    ActionDrop,
    /// The pipeline finished without choosing an egress port.
    NoEgress,
    /// The chosen egress port does not exist on the device.
    BadEgress,
}

impl core::fmt::Display for DropReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DropReason::ParserReject => "parser reject",
            DropReason::PacketTooShort => "packet too short",
            DropReason::ActionDrop => "mark_to_drop",
            DropReason::NoEgress => "no egress chosen",
            DropReason::BadEgress => "egress port out of range",
        };
        write!(f, "{s}")
    }
}

/// The final fate of a processed packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Send the (possibly rewritten) bytes out of one port.
    Forward {
        /// Egress port.
        port: u16,
        /// Serialized packet bytes.
        data: Vec<u8>,
    },
    /// Send out of every port except the ingress (egress_spec 511).
    Flood {
        /// Serialized packet bytes.
        data: Vec<u8>,
    },
    /// Discard.
    Drop(DropReason),
}

impl Verdict {
    /// True if the packet survives to some output.
    pub fn is_forwarded(&self) -> bool {
        !matches!(self, Verdict::Drop(_))
    }

    /// A short human-readable summary: the verdict kind, egress port and
    /// output length — **not** the output bytes. This is what the trace's
    /// [`TraceEvent::Final`] event records; formatting the full frame into
    /// the trace (as `{:?}` would) costs more than processing the packet.
    pub fn label(&self) -> String {
        match self {
            Verdict::Forward { port, data } => {
                format!("Forward {{ port: {port}, len: {} }}", data.len())
            }
            Verdict::Flood { data } => format!("Flood {{ len: {} }}", data.len()),
            Verdict::Drop(reason) => format!("Drop({reason:?})"),
        }
    }

    /// The output bytes, if any.
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            Verdict::Forward { data, .. } | Verdict::Flood { data } => Some(data),
            Verdict::Drop(_) => None,
        }
    }
}

/// One step of packet processing.
///
/// Name-carrying events hold [`TraceName`]s — interned `Arc<str>`s cloned
/// from the compiled program, so recording an event never copies a string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Entered a parser state.
    ParserState {
        /// State name.
        name: TraceName,
    },
    /// Extracted a header.
    Extract {
        /// Header instance name.
        header: TraceName,
        /// Bit offset within the packet where extraction started.
        at_bit: usize,
    },
    /// Parser accepted the packet.
    ParserAccept,
    /// Parser rejected the packet.
    ParserReject,
    /// Entered a control block.
    ControlEnter {
        /// Control name.
        name: TraceName,
    },
    /// Applied a table.
    TableApply {
        /// Table name.
        table: TraceName,
        /// Evaluated key values.
        keys: Vec<u128>,
        /// Whether an entry matched.
        hit: bool,
        /// Name of the action that ran (matched or default).
        action: TraceName,
    },
    /// An action (or inline op) dropped the packet.
    MarkToDrop,
    /// `exit` executed.
    Exit,
    /// A header was emitted by the deparser.
    Emit {
        /// Header instance name.
        header: TraceName,
    },
    /// Final verdict summary.
    Final {
        /// Human-readable description ([`Verdict::label`]).
        verdict: String,
    },
}

/// A full per-packet trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace with room for `capacity` events — batch paths size
    /// each packet's trace from its predecessor so steady-state traced
    /// batches grow each event vector at most once.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Names of tables applied, in order.
    pub fn tables_applied(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TableApply { table, .. } => Some(table.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Names of parser states visited, in order.
    pub fn states_visited(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ParserState { name } => Some(name.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// True if the parser rejected.
    pub fn parser_rejected(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::ParserReject))
    }
}

/// A streaming consumer of batch-path results.
///
/// `Dataplane::process_batch_with` records each packet's trace into **one
/// reused buffer** and hands it to the sink by reference, so traced batch
/// runs allocate nothing per packet beyond the output frame: tap
/// accounting, checkers and log writers can all consume events in place.
/// A sink that needs to keep a trace must clone it (see [`CollectSink`]).
pub trait TraceSink {
    /// Observe packet `index`'s verdict and trace.
    ///
    /// The trace borrow is only valid for the duration of the call — the
    /// buffer is cleared and reused for the next packet. When tracing is
    /// disabled on the data plane the trace is empty.
    fn observe(&mut self, index: usize, verdict: &Verdict, trace: &Trace);
}

/// A sink that ignores everything (pure-throughput runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn observe(&mut self, _index: usize, _verdict: &Verdict, _trace: &Trace) {}
}

/// A sink that clones every trace into a vector — the compatibility shim
/// behind APIs that still return materialised `Vec<Trace>` results.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// Collected traces, one per observed packet, in batch order.
    pub traces: Vec<Trace>,
}

impl TraceSink for CollectSink {
    fn observe(&mut self, _index: usize, _verdict: &Verdict, trace: &Trace) {
        self.traces.push(trace.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_queries() {
        let mut t = Trace::default();
        t.push(TraceEvent::ParserState {
            name: "start".into(),
        });
        t.push(TraceEvent::Extract {
            header: "ethernet".into(),
            at_bit: 0,
        });
        t.push(TraceEvent::ParserReject);
        assert_eq!(t.states_visited(), vec!["start"]);
        assert!(t.parser_rejected());
        assert!(t.tables_applied().is_empty());
    }

    #[test]
    fn verdict_helpers() {
        let v = Verdict::Forward {
            port: 2,
            data: vec![1, 2, 3],
        };
        assert!(v.is_forwarded());
        assert_eq!(v.data(), Some(&[1u8, 2, 3][..]));
        let d = Verdict::Drop(DropReason::ParserReject);
        assert!(!d.is_forwarded());
        assert_eq!(d.data(), None);
        assert_eq!(DropReason::ParserReject.to_string(), "parser reject");
    }
}
