//! Per-packet execution traces.
//!
//! The reference interpreter records every semantically meaningful step it
//! takes. Traces serve two purposes in the reproduction:
//!
//! 1. they are the "ground truth" NetDebug's fault localisation compares
//!    hardware behaviour against, and
//! 2. they give the *status monitoring* and *functional testing* use-cases
//!    a machine-readable account of where a packet went and why.
//!
//! Two representations exist. [`Trace`] is the semantic, materialised form
//! — a vector of [`TraceEvent`]s — that tests, checkers and probes pattern
//! match on. On the hot paths, however, both engines record into a
//! `TraceBuf`: a **flat binary event buffer** of `u32`-tagged
//! little-endian records appended to one reused `Vec<u8>` per packet, so
//! recording an event writes a few words instead of constructing an enum
//! (no `Arc` clone, no key-vector clone, no `String`). A [`LazyTrace`]
//! borrows that buffer plus the program's interned name tables and decodes
//! to [`TraceEvent`]s **only when a consumer actually inspects it** — a
//! [`TraceSink`] that just counts stages iterates the records without ever
//! materialising a `Trace`.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An interned name inside a [`TraceEvent`].
///
/// Names of parser states, headers, controls, tables and actions are
/// interned **once at program-compile time** (see `netdebug-dataplane`'s
/// `CompiledProgram`); decoding an event then clones a pointer instead of
/// a heap `String`. `Arc<str>` compares by content (`PartialEq`), converts
/// from `&str` (tests construct events with `"start".into()` as before)
/// and derefs to `&str` for consumers.
pub type TraceName = Arc<str>;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The parser took a `reject` transition.
    ParserReject,
    /// The packet ran out of bytes mid-extract (P4 `PacketTooShort`).
    PacketTooShort,
    /// An action executed `mark_to_drop()` (and no later egress write).
    ActionDrop,
    /// The pipeline finished without choosing an egress port.
    NoEgress,
    /// The chosen egress port does not exist on the device.
    BadEgress,
    /// The engine worker processing the packet panicked; the recovery
    /// path quarantined the packet instead of unwinding the caller.
    EngineFault,
    /// The frame was the isolated culprit of a device fault and was
    /// skipped by checkpoint/restore recovery instead of being replayed.
    Faulted,
}

impl DropReason {
    /// Stable wire code inside a [`TraceBuf`] `FINAL` record.
    fn code(self) -> u32 {
        match self {
            DropReason::ParserReject => 0,
            DropReason::PacketTooShort => 1,
            DropReason::ActionDrop => 2,
            DropReason::NoEgress => 3,
            DropReason::BadEgress => 4,
            DropReason::EngineFault => 5,
            DropReason::Faulted => 6,
        }
    }

    fn from_code(code: u32) -> DropReason {
        match code {
            0 => DropReason::ParserReject,
            1 => DropReason::PacketTooShort,
            2 => DropReason::ActionDrop,
            3 => DropReason::NoEgress,
            5 => DropReason::EngineFault,
            6 => DropReason::Faulted,
            _ => DropReason::BadEgress,
        }
    }
}

impl core::fmt::Display for DropReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DropReason::ParserReject => "parser reject",
            DropReason::PacketTooShort => "packet too short",
            DropReason::ActionDrop => "mark_to_drop",
            DropReason::NoEgress => "no egress chosen",
            DropReason::BadEgress => "egress port out of range",
            DropReason::EngineFault => "engine fault (worker panicked)",
            DropReason::Faulted => "culprit frame skipped by recovery",
        };
        write!(f, "{s}")
    }
}

/// The final fate of a processed packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Send the (possibly rewritten) bytes out of one port.
    Forward {
        /// Egress port.
        port: u16,
        /// Serialized packet bytes.
        data: Vec<u8>,
    },
    /// Send out of every port except the ingress (egress_spec 511).
    Flood {
        /// Serialized packet bytes.
        data: Vec<u8>,
    },
    /// Discard.
    Drop(DropReason),
}

impl Verdict {
    /// True if the packet survives to some output.
    pub fn is_forwarded(&self) -> bool {
        !matches!(self, Verdict::Drop(_))
    }

    /// The `Copy` summary the trace's [`TraceEvent::Final`] event records:
    /// the verdict kind, egress port and output length — **not** the
    /// output bytes.
    pub fn summary(&self) -> VerdictSummary {
        match self {
            Verdict::Forward { port, data } => VerdictSummary::Forward {
                port: *port,
                len: data.len() as u32,
            },
            Verdict::Flood { data } => VerdictSummary::Flood {
                len: data.len() as u32,
            },
            Verdict::Drop(reason) => VerdictSummary::Drop(*reason),
        }
    }

    /// A short human-readable summary (the [`VerdictSummary`] rendered).
    /// Formatting the full frame into a trace (as `{:?}` would) costs more
    /// than processing the packet, so only kind, port and length appear.
    pub fn label(&self) -> String {
        self.summary().to_string()
    }

    /// The output bytes, if any.
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            Verdict::Forward { data, .. } | Verdict::Flood { data } => Some(data),
            Verdict::Drop(_) => None,
        }
    }
}

/// A [`Verdict`] without the frame bytes: kind, egress port, output
/// length. `Copy`, 8 bytes of payload — what [`TraceEvent::Final`]
/// carries, replacing the per-packet `format!` string the seed allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictSummary {
    /// Forwarded out of one port with `len` output bytes.
    Forward {
        /// Egress port.
        port: u16,
        /// Output frame length, bytes.
        len: u32,
    },
    /// Flooded with `len` output bytes.
    Flood {
        /// Output frame length, bytes.
        len: u32,
    },
    /// Dropped.
    Drop(DropReason),
}

impl core::fmt::Display for VerdictSummary {
    /// Renders exactly what `Verdict::label()` historically produced.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerdictSummary::Forward { port, len } => {
                write!(f, "Forward {{ port: {port}, len: {len} }}")
            }
            VerdictSummary::Flood { len } => write!(f, "Flood {{ len: {len} }}"),
            VerdictSummary::Drop(reason) => write!(f, "Drop({reason:?})"),
        }
    }
}

/// One step of packet processing.
///
/// Name-carrying events hold [`TraceName`]s — interned `Arc<str>`s cloned
/// from the compiled program, so decoding an event never copies a string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Entered a parser state.
    ParserState {
        /// State name.
        name: TraceName,
    },
    /// Extracted a header.
    Extract {
        /// Header instance name.
        header: TraceName,
        /// Bit offset within the packet where extraction started.
        at_bit: usize,
    },
    /// Parser accepted the packet.
    ParserAccept,
    /// Parser rejected the packet.
    ParserReject,
    /// Entered a control block.
    ControlEnter {
        /// Control name.
        name: TraceName,
    },
    /// Applied a table.
    TableApply {
        /// Table name.
        table: TraceName,
        /// Evaluated key values.
        keys: Vec<u128>,
        /// Whether an entry matched.
        hit: bool,
        /// Name of the action that ran (matched or default).
        action: TraceName,
    },
    /// An action (or inline op) dropped the packet.
    MarkToDrop,
    /// `exit` executed.
    Exit,
    /// A header was emitted by the deparser.
    Emit {
        /// Header instance name.
        header: TraceName,
    },
    /// Final verdict summary.
    Final {
        /// Kind, egress port and output length of the verdict.
        verdict: VerdictSummary,
    },
}

/// A full per-packet trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace with room for `capacity` events. The batch paths
    /// size each decoded trace **exactly** from its packet's flat record
    /// buffer ([`LazyTrace::event_count`]), so the event vector is
    /// allocated once at the right size — no predecessor heuristic.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Names of tables applied, in order.
    pub fn tables_applied(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TableApply { table, .. } => Some(table.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Names of parser states visited, in order.
    pub fn states_visited(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ParserState { name } => Some(name.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// True if the parser rejected.
    pub fn parser_rejected(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::ParserReject))
    }
}

// ---------------------------------------------------------------------
// Flat binary trace records
// ---------------------------------------------------------------------

const TAG_STATE: u32 = 0;
const TAG_EXTRACT: u32 = 1;
const TAG_ACCEPT: u32 = 2;
const TAG_REJECT: u32 = 3;
const TAG_CONTROL: u32 = 4;
const TAG_TABLE: u32 = 5;
const TAG_MARK_DROP: u32 = 6;
const TAG_EXIT: u32 = 7;
const TAG_EMIT: u32 = 8;
const TAG_FINAL: u32 = 9;

/// The flat binary event buffer both engines record into on traced paths.
///
/// Records are `u32`-tagged little-endian words appended to one reused
/// `Vec<u8>`; table keys are inlined as 16-byte words. Recording an event
/// is a bounds-checked `extend_from_slice` of a few words — no enum
/// construction, no `Arc` clone, no per-event allocation once the buffer
/// has grown to its packet-lifetime high-water mark. Decode to semantic
/// [`TraceEvent`]s through [`LazyTrace`].
#[derive(Debug, Default)]
pub(crate) struct TraceBuf {
    bytes: Vec<u8>,
}

impl TraceBuf {
    /// Forget the previous packet's records, keeping the allocation.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.bytes.clear();
    }

    /// The raw record bytes of the current packet (the flow cache stores
    /// these verbatim so a cached hit replays the exact event stream).
    #[inline]
    pub(crate) fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Replace the buffer contents with previously captured record
    /// bytes, reusing the allocation (the flow-cache hit path).
    #[inline]
    pub(crate) fn load(&mut self, bytes: &[u8]) {
        self.bytes.clear();
        self.bytes.extend_from_slice(bytes);
    }

    #[inline]
    fn word(&mut self, w: u32) {
        self.bytes.extend_from_slice(&w.to_le_bytes());
    }

    #[inline]
    fn wide(&mut self, v: u128) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub(crate) fn state(&mut self, sid: u32) {
        self.word(TAG_STATE);
        self.word(sid);
    }

    #[inline]
    pub(crate) fn extract(&mut self, hid: u32, at_bit: u32) {
        self.word(TAG_EXTRACT);
        self.word(hid);
        self.word(at_bit);
    }

    #[inline]
    pub(crate) fn accept(&mut self) {
        self.word(TAG_ACCEPT);
    }

    #[inline]
    pub(crate) fn reject(&mut self) {
        self.word(TAG_REJECT);
    }

    #[inline]
    pub(crate) fn control(&mut self, cid: u32) {
        self.word(TAG_CONTROL);
        self.word(cid);
    }

    #[inline]
    pub(crate) fn table(&mut self, tid: u32, aid: u32, hit: bool, keys: &[u128]) {
        self.word(TAG_TABLE);
        self.word(tid);
        self.word(aid);
        self.word(hit as u32);
        self.word(keys.len() as u32);
        for &k in keys {
            self.wide(k);
        }
    }

    #[inline]
    pub(crate) fn mark_drop(&mut self) {
        self.word(TAG_MARK_DROP);
    }

    #[inline]
    pub(crate) fn exit(&mut self) {
        self.word(TAG_EXIT);
    }

    #[inline]
    pub(crate) fn emit(&mut self, hid: u32) {
        self.word(TAG_EMIT);
        self.word(hid);
    }

    #[inline]
    pub(crate) fn final_verdict(&mut self, v: &Verdict) {
        self.word(TAG_FINAL);
        match v.summary() {
            VerdictSummary::Forward { port, len } => {
                self.word(0);
                self.word(u32::from(port));
                self.word(len);
            }
            VerdictSummary::Flood { len } => {
                self.word(1);
                self.word(len);
                self.word(0);
            }
            VerdictSummary::Drop(reason) => {
                self.word(2);
                self.word(reason.code());
                self.word(0);
            }
        }
    }
}

/// The interned name tables a [`LazyTrace`] resolves record ids against:
/// parser states, controls, tables, actions and header instances, indexed
/// by their IR ids. Owned by the compiled program; both engines record the
/// ids, so decoded traces clone identical `Arc` pointers.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceTables {
    pub(crate) states: Vec<TraceName>,
    pub(crate) controls: Vec<TraceName>,
    pub(crate) tables: Vec<TraceName>,
    pub(crate) actions: Vec<TraceName>,
    pub(crate) headers: Vec<TraceName>,
}

#[inline]
fn u32_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("u32 record word"))
}

#[inline]
fn u128_at(bytes: &[u8], off: usize) -> u128 {
    u128::from_le_bytes(bytes[off..off + 16].try_into().expect("u128 record word"))
}

/// One parsed record of a [`TraceBuf`]; table keys stay in the buffer
/// (offset + count) so walking records allocates nothing.
#[derive(Clone, Copy)]
enum Rec {
    State(u32),
    Extract(u32, u32),
    Accept,
    Reject,
    Control(u32),
    Table {
        tid: u32,
        aid: u32,
        hit: bool,
        keys_off: usize,
        nkeys: u32,
    },
    MarkDrop,
    Exit,
    Emit(u32),
    Final(VerdictSummary),
}

/// Zero-allocation walker over the records of a [`TraceBuf`].
struct Records<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl Iterator for Records<'_> {
    type Item = Rec;

    fn next(&mut self) -> Option<Rec> {
        if self.off >= self.bytes.len() {
            return None;
        }
        let tag = u32_at(self.bytes, self.off);
        self.off += 4;
        let rec = match tag {
            TAG_STATE => {
                let sid = u32_at(self.bytes, self.off);
                self.off += 4;
                Rec::State(sid)
            }
            TAG_EXTRACT => {
                let hid = u32_at(self.bytes, self.off);
                let at = u32_at(self.bytes, self.off + 4);
                self.off += 8;
                Rec::Extract(hid, at)
            }
            TAG_ACCEPT => Rec::Accept,
            TAG_REJECT => Rec::Reject,
            TAG_CONTROL => {
                let cid = u32_at(self.bytes, self.off);
                self.off += 4;
                Rec::Control(cid)
            }
            TAG_TABLE => {
                let tid = u32_at(self.bytes, self.off);
                let aid = u32_at(self.bytes, self.off + 4);
                let hit = u32_at(self.bytes, self.off + 8) != 0;
                let nkeys = u32_at(self.bytes, self.off + 12);
                let keys_off = self.off + 16;
                self.off = keys_off + nkeys as usize * 16;
                Rec::Table {
                    tid,
                    aid,
                    hit,
                    keys_off,
                    nkeys,
                }
            }
            TAG_MARK_DROP => Rec::MarkDrop,
            TAG_EXIT => Rec::Exit,
            TAG_EMIT => {
                let hid = u32_at(self.bytes, self.off);
                self.off += 4;
                Rec::Emit(hid)
            }
            TAG_FINAL => {
                let kind = u32_at(self.bytes, self.off);
                let a = u32_at(self.bytes, self.off + 4);
                let b = u32_at(self.bytes, self.off + 8);
                self.off += 12;
                Rec::Final(match kind {
                    0 => VerdictSummary::Forward {
                        port: a as u16,
                        len: b,
                    },
                    1 => VerdictSummary::Flood { len: a },
                    _ => VerdictSummary::Drop(DropReason::from_code(a)),
                })
            }
            other => unreachable!("corrupt trace record tag {other}"),
        };
        Some(rec)
    }
}

/// A borrowed, undecoded per-packet trace: the flat record buffer plus the
/// program's interned name tables.
///
/// This is what a [`TraceSink`] observes on the streaming batch path.
/// Consumers that only need counts or names iterate the records in place
/// ([`LazyTrace::states`], [`LazyTrace::tables`]) without allocating;
/// consumers that keep the trace decode it ([`LazyTrace::decode`]) into a
/// semantic [`Trace`], pre-sized exactly from the record count. Decoding
/// is the only point that clones name `Arc`s or allocates key vectors —
/// the recording engines never do.
pub struct LazyTrace<'a> {
    bytes: &'a [u8],
    names: &'a TraceTables,
}

impl<'a> LazyTrace<'a> {
    pub(crate) fn over(buf: &'a TraceBuf, names: &'a TraceTables) -> LazyTrace<'a> {
        LazyTrace {
            bytes: &buf.bytes,
            names,
        }
    }

    fn records(&self) -> Records<'a> {
        Records {
            bytes: self.bytes,
            off: 0,
        }
    }

    /// True when no events were recorded (tracing disabled).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of recorded events (one walk over the records, no decode).
    pub fn event_count(&self) -> usize {
        self.records().count()
    }

    /// True if the parser rejected the packet.
    pub fn parser_rejected(&self) -> bool {
        self.records().any(|r| matches!(r, Rec::Reject))
    }

    /// The final verdict summary, if recorded.
    pub fn final_verdict(&self) -> Option<VerdictSummary> {
        self.records().find_map(|r| match r {
            Rec::Final(s) => Some(s),
            _ => None,
        })
    }

    /// Names of parser states visited, in order, without decoding.
    pub fn states(&self) -> impl Iterator<Item = &'a str> + '_ {
        let names = self.names;
        self.records().filter_map(move |r| match r {
            Rec::State(sid) => Some(names.states[sid as usize].as_ref()),
            _ => None,
        })
    }

    /// Names of tables applied, in order, without decoding.
    pub fn tables(&self) -> impl Iterator<Item = &'a str> + '_ {
        let names = self.names;
        self.records().filter_map(move |r| match r {
            Rec::Table { tid, .. } => Some(names.tables[tid as usize].as_ref()),
            _ => None,
        })
    }

    /// Decode into a freshly allocated [`Trace`], sized exactly.
    pub fn decode(&self) -> Trace {
        let mut out = Trace::with_capacity(self.event_count());
        self.decode_append(&mut out);
        out
    }

    /// Decode into `out`, clearing it first and reusing its allocation.
    pub fn decode_into(&self, out: &mut Trace) {
        out.events.clear();
        let n = self.event_count();
        if out.events.capacity() < n {
            out.events.reserve(n - out.events.capacity());
        }
        self.decode_append(out);
    }

    fn decode_append(&self, out: &mut Trace) {
        let names = self.names;
        for rec in self.records() {
            out.push(match rec {
                Rec::State(sid) => TraceEvent::ParserState {
                    name: names.states[sid as usize].clone(),
                },
                Rec::Extract(hid, at) => TraceEvent::Extract {
                    header: names.headers[hid as usize].clone(),
                    at_bit: at as usize,
                },
                Rec::Accept => TraceEvent::ParserAccept,
                Rec::Reject => TraceEvent::ParserReject,
                Rec::Control(cid) => TraceEvent::ControlEnter {
                    name: names.controls[cid as usize].clone(),
                },
                Rec::Table {
                    tid,
                    aid,
                    hit,
                    keys_off,
                    nkeys,
                } => TraceEvent::TableApply {
                    table: names.tables[tid as usize].clone(),
                    keys: (0..nkeys as usize)
                        .map(|k| u128_at(self.bytes, keys_off + 16 * k))
                        .collect(),
                    hit,
                    action: names.actions[aid as usize].clone(),
                },
                Rec::MarkDrop => TraceEvent::MarkToDrop,
                Rec::Exit => TraceEvent::Exit,
                Rec::Emit(hid) => TraceEvent::Emit {
                    header: names.headers[hid as usize].clone(),
                },
                Rec::Final(summary) => TraceEvent::Final { verdict: summary },
            });
        }
    }
}

/// A streaming consumer of batch-path results.
///
/// `Dataplane::process_batch_with` records each packet's events into **one
/// reused flat buffer** and hands it to the sink as an undecoded
/// [`LazyTrace`], so traced batch runs allocate nothing per packet beyond
/// the output frame unless the sink itself decodes: tap accounting and
/// counters can walk the records in place, checkers and log writers call
/// [`LazyTrace::decode`] (or [`LazyTrace::decode_into`] a reused
/// [`Trace`]) when they need the semantic events.
pub trait TraceSink {
    /// Observe packet `index`'s verdict and (undecoded) trace.
    ///
    /// The borrow is only valid for the duration of the call — the buffer
    /// is cleared and reused for the next packet. When tracing is disabled
    /// on the data plane the trace is empty.
    fn observe(&mut self, index: usize, verdict: &Verdict, trace: &LazyTrace<'_>);
}

/// A sink that ignores everything (pure-throughput runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn observe(&mut self, _index: usize, _verdict: &Verdict, _trace: &LazyTrace<'_>) {}
}

/// A sink that decodes every trace into a vector — the compatibility shim
/// behind APIs that still return materialised `Vec<Trace>` results.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// Collected traces, one per observed packet, in batch order.
    pub traces: Vec<Trace>,
}

impl TraceSink for CollectSink {
    fn observe(&mut self, _index: usize, _verdict: &Verdict, trace: &LazyTrace<'_>) {
        self.traces.push(trace.decode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_queries() {
        let mut t = Trace::default();
        t.push(TraceEvent::ParserState {
            name: "start".into(),
        });
        t.push(TraceEvent::Extract {
            header: "ethernet".into(),
            at_bit: 0,
        });
        t.push(TraceEvent::ParserReject);
        assert_eq!(t.states_visited(), vec!["start"]);
        assert!(t.parser_rejected());
        assert!(t.tables_applied().is_empty());
    }

    #[test]
    fn verdict_helpers() {
        let v = Verdict::Forward {
            port: 2,
            data: vec![1, 2, 3],
        };
        assert!(v.is_forwarded());
        assert_eq!(v.data(), Some(&[1u8, 2, 3][..]));
        let d = Verdict::Drop(DropReason::ParserReject);
        assert!(!d.is_forwarded());
        assert_eq!(d.data(), None);
        assert_eq!(DropReason::ParserReject.to_string(), "parser reject");
    }

    #[test]
    fn verdict_summary_renders_like_the_old_labels() {
        let fwd = Verdict::Forward {
            port: 3,
            data: vec![0; 64],
        };
        assert_eq!(fwd.label(), "Forward { port: 3, len: 64 }");
        let flood = Verdict::Flood { data: vec![0; 60] };
        assert_eq!(flood.label(), "Flood { len: 60 }");
        let drop = Verdict::Drop(DropReason::NoEgress);
        assert_eq!(drop.label(), "Drop(NoEgress)");
    }

    #[test]
    fn flat_buffer_roundtrips_every_record_kind() {
        let names = TraceTables {
            states: vec!["start".into(), "parse_ipv4".into()],
            controls: vec!["ingress".into()],
            tables: vec!["ipv4_lpm".into()],
            actions: vec!["fwd".into()],
            headers: vec!["ethernet".into(), "ipv4".into()],
        };
        let mut buf = TraceBuf::default();
        buf.state(0);
        buf.extract(0, 0);
        buf.state(1);
        buf.extract(1, 112);
        buf.accept();
        buf.control(0);
        buf.table(0, 0, true, &[0xDEAD_BEEF_u128, u128::MAX]);
        buf.mark_drop();
        buf.exit();
        buf.emit(0);
        buf.final_verdict(&Verdict::Forward {
            port: 7,
            data: vec![0; 33],
        });

        let lazy = LazyTrace::over(&buf, &names);
        assert!(!lazy.is_empty());
        assert_eq!(lazy.event_count(), 11);
        assert!(!lazy.parser_rejected());
        assert_eq!(
            lazy.states().collect::<Vec<_>>(),
            vec!["start", "parse_ipv4"]
        );
        assert_eq!(lazy.tables().collect::<Vec<_>>(), vec!["ipv4_lpm"]);
        assert_eq!(
            lazy.final_verdict(),
            Some(VerdictSummary::Forward { port: 7, len: 33 })
        );

        let t = lazy.decode();
        assert_eq!(t.events.len(), 11);
        assert_eq!(
            t.events[6],
            TraceEvent::TableApply {
                table: "ipv4_lpm".into(),
                keys: vec![0xDEAD_BEEF_u128, u128::MAX],
                hit: true,
                action: "fwd".into(),
            }
        );
        assert_eq!(
            t.events[10],
            TraceEvent::Final {
                verdict: VerdictSummary::Forward { port: 7, len: 33 }
            }
        );

        // decode_into reuses the allocation and produces the same events.
        let mut reused = Trace::default();
        lazy.decode_into(&mut reused);
        assert_eq!(reused, t);

        // A cleared buffer is an empty trace.
        buf.clear();
        let lazy = LazyTrace::over(&buf, &names);
        assert!(lazy.is_empty());
        assert_eq!(lazy.event_count(), 0);
        assert_eq!(lazy.decode(), Trace::default());
    }

    #[test]
    fn rejects_surface_through_the_lazy_view() {
        let names = TraceTables {
            states: vec!["start".into()],
            ..TraceTables::default()
        };
        let mut buf = TraceBuf::default();
        buf.state(0);
        buf.reject();
        buf.final_verdict(&Verdict::Drop(DropReason::PacketTooShort));
        let lazy = LazyTrace::over(&buf, &names);
        assert!(lazy.parser_rejected());
        assert_eq!(
            lazy.final_verdict(),
            Some(VerdictSummary::Drop(DropReason::PacketTooShort))
        );
        let t = lazy.decode();
        assert!(t.parser_rejected());
    }
}
