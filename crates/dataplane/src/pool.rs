//! The persistent shard worker pool behind `process_batch_parallel`.
//!
//! The first sharded engine spawned OS threads **per batch** through
//! `std::thread::scope` — correct, but the spawn/join pair (tens of
//! microseconds) sat on every batch of the steady state, and a `Device`
//! fleet paid it once per device per window. This module replaces it with
//! **long-lived, shard-pinned workers**: spawned once (lazily, on the
//! first parallel batch), handed work over channels, reused for every
//! subsequent batch of the owning [`crate::Dataplane`] — so fleets and
//! stream drivers amortise thread creation to zero.
//!
//! Scoped threads could borrow the caller's batch; detached workers
//! cannot (no `unsafe`, and this crate forbids it), so each batch's
//! frames are copied once into a reusable [`PacketArena`] — a single
//! flat byte buffer plus spans — shared with the workers behind an
//! `Arc`. The copy is one sequential `memcpy` of the batch (cheap,
//! cache-warm) against the per-batch thread spawn it replaces; the arena
//! buffer itself is recycled through [`crate::Dataplane`] once the last
//! worker drops its handle, so the steady state allocates nothing.
//!
//! Everything else a worker needs is owned or immutably shared: the
//! program and compiled bytecode (`Arc`), the pinned epoch snapshots
//! (`Arc`, pinned by the caller before dispatch — exactly the same
//! epoch-atomicity story as the scoped version), a shard-cloned
//! [`ExternState`] and the engine/tracing flags. Results return over a
//! channel and merge **in shard order**, so the join is as deterministic
//! as the scoped join it replaces.

use crate::cache::FlowCache;
use crate::compile::CompiledProgram;
use crate::externs::ExternState;
use crate::interp::{run_shard, Engine, Env, ShardResult};
use crate::table::EntrySnapshot;
use crate::trace::TraceBuf;
use netdebug_p4::ir;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One batch's frames, flattened into a single buffer the workers share.
#[derive(Debug, Default)]
pub(crate) struct PacketArena {
    data: Vec<u8>,
    /// Per packet: ingress port, start and end offsets into `data`.
    spans: Vec<(u16, u32, u32)>,
}

impl PacketArena {
    /// Copy a batch in, reusing the buffers from the previous batch.
    pub(crate) fn fill(&mut self, pkts: &[(u16, &[u8])]) {
        self.data.clear();
        self.spans.clear();
        self.spans.reserve(pkts.len());
        for &(port, frame) in pkts {
            let start = self.data.len() as u32;
            self.data.extend_from_slice(frame);
            self.spans.push((port, start, self.data.len() as u32));
        }
    }

    /// The `i`-th packet of the batch.
    #[inline]
    pub(crate) fn pkt(&self, i: usize) -> (u16, &[u8]) {
        let (port, start, end) = self.spans[i];
        (port, &self.data[start as usize..end as usize])
    }
}

/// Which packets of the arena one shard processes.
#[derive(Debug, Clone)]
pub(crate) enum ShardSpan {
    /// A contiguous range of the batch (the `Safe` split).
    Contiguous(Range<usize>),
    /// An explicit index list (the meter-partitioned split).
    Indexed(Vec<usize>),
}

/// Everything one shard needs, owned or immutably shared.
pub(crate) struct Job {
    pub(crate) program: Arc<ir::Program>,
    pub(crate) compiled: Arc<CompiledProgram>,
    /// Epoch snapshots pinned by the caller **before** dispatch: every
    /// shard of a batch reads one coherent publication-order prefix, as
    /// with the scoped pool.
    pub(crate) pins: Arc<Vec<Arc<EntrySnapshot>>>,
    pub(crate) arena: Arc<PacketArena>,
    pub(crate) span: ShardSpan,
    /// Shard-cloned extern state (zeroed counters, shared configs).
    pub(crate) externs: ExternState,
    pub(crate) tracing: bool,
    pub(crate) engine: Engine,
    pub(crate) now_cycles: u64,
    /// Flow-cache key-prefix bytes when the dispatching data plane has
    /// its cache enabled (`None` = run uncached). Workers keep their own
    /// per-thread cache, persistent across batches of the same program.
    pub(crate) cache_key_cap: Option<usize>,
    /// The epoch the dispatcher pinned this batch at; the worker cache
    /// invalidates by comparing against it.
    pub(crate) pin_gen: u64,
}

/// What a worker reports per job: the shard's results, or — when the
/// shard panicked mid-run — the span it was working on, so the
/// dispatcher can replay those packets sequentially and quarantine the
/// one that keeps dying instead of unwinding the whole batch.
type ShardOutcome = Result<ShardResult, ShardSpan>;

type JobMsg = (usize, Job, Sender<(usize, ShardOutcome)>);

struct Worker {
    tx: Sender<JobMsg>,
    handle: Option<JoinHandle<()>>,
}

/// The pool: one worker per shard index, grown on demand, joined on drop.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    result_tx: Sender<(usize, ShardOutcome)>,
    result_rx: Receiver<(usize, ShardOutcome)>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    pub(crate) fn new() -> Self {
        let (result_tx, result_rx) = channel();
        WorkerPool {
            workers: Vec::new(),
            result_tx,
            result_rx,
        }
    }

    /// Workers currently alive (observability for tests).
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn ensure(&mut self, shards: usize) {
        while self.workers.len() < shards {
            let (tx, rx) = channel::<JobMsg>();
            let idx = self.workers.len();
            let handle = std::thread::Builder::new()
                .name(format!("netdebug-shard-{idx}"))
                .spawn(move || worker_loop(rx))
                .expect("spawn shard worker");
            self.workers.push(Worker {
                tx,
                handle: Some(handle),
            });
        }
    }

    /// Dispatch one job per shard and collect the outcomes in shard
    /// order. A shard whose worker panicked reports `Err(span)` — its
    /// packet assignment — instead of killing the batch; the worker
    /// itself survives (the panic is caught in `worker_loop`) and keeps
    /// serving later batches.
    pub(crate) fn run(&mut self, jobs: Vec<Job>) -> Vec<ShardOutcome> {
        let n = jobs.len();
        self.ensure(n);
        // Drain anything a previous aborted run left behind (possible only
        // if a caller caught the worker-panic and dispatched again): stale
        // results must never be counted toward this batch.
        while self.result_rx.try_recv().is_ok() {}
        for (i, job) in jobs.into_iter().enumerate() {
            self.workers[i]
                .tx
                .send((i, job, self.result_tx.clone()))
                .expect("shard worker channel closed");
        }
        let mut slots: Vec<Option<ShardOutcome>> = Vec::new();
        slots.resize_with(n, || None);
        for _ in 0..n {
            let (i, res) = self.result_rx.recv().expect("shard result channel closed");
            slots[i] = Some(res);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every shard reports exactly once"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop; join so
        // no detached thread outlives the data plane.
        for w in &mut self.workers {
            drop(std::mem::replace(&mut w.tx, channel().0));
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The worker body: receive a job, run the shard, report. The execution
/// environment is cached between batches, keyed by the program it was
/// shaped for — the cache **holds** that `Arc`, so the identity
/// comparison can never be confused by a freed-and-reallocated program
/// — and the steady state re-allocates nothing per batch.
fn worker_loop(rx: Receiver<JobMsg>) {
    let mut env_cache: Option<(Arc<ir::Program>, Env, TraceBuf, Option<FlowCache>)> = None;
    while let Ok((idx, job, out)) = rx.recv() {
        let Job {
            program,
            compiled,
            pins,
            arena,
            span,
            externs,
            tracing,
            engine,
            now_cycles,
            cache_key_cap,
            pin_gen,
        } = job;
        let (env, scratch, flow_cache) = match &mut env_cache {
            Some((cached, env, scratch, flow)) if Arc::ptr_eq(cached, &program) => {
                (env, scratch, flow)
            }
            slot => {
                let env = Env::new(&program);
                *slot = Some((Arc::clone(&program), env, TraceBuf::default(), None));
                let cached = slot.as_mut().expect("just set");
                (&mut cached.1, &mut cached.2, &mut cached.3)
            }
        };
        // The worker cache follows the dispatcher's enablement: build it
        // lazily when a caching job arrives, drop it when caching stops
        // (stale entries must not survive a disable/re-enable cycle).
        match cache_key_cap {
            Some(cap) if flow_cache.is_none() => *flow_cache = Some(FlowCache::new(cap)),
            None => *flow_cache = None,
            _ => {}
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let views: Vec<_> = pins.iter().map(|s| s.view()).collect();
            match &span {
                ShardSpan::Contiguous(range) => run_shard(
                    &program,
                    &compiled,
                    engine,
                    &views,
                    externs,
                    range.clone().map(|i| arena.pkt(i)),
                    tracing,
                    now_cycles,
                    env,
                    scratch,
                    flow_cache.as_mut(),
                    pin_gen,
                ),
                ShardSpan::Indexed(indices) => run_shard(
                    &program,
                    &compiled,
                    engine,
                    &views,
                    externs,
                    indices.iter().map(|&i| arena.pkt(i)),
                    tracing,
                    now_cycles,
                    env,
                    scratch,
                    flow_cache.as_mut(),
                    pin_gen,
                ),
            }
        }));
        let result = match outcome {
            Ok(res) => Ok(res),
            Err(_) => {
                // Poison the env cache: the panic may have left it
                // mid-reset for this program. Hand the span back so the
                // dispatcher can replay the shard's packets sequentially.
                env_cache = None;
                Err(span)
            }
        };
        // Drop the Arc handles on the arena/pins *before* reporting, so
        // the dispatcher can reclaim the arena buffer as soon as the
        // last result arrives.
        drop((program, compiled, pins, arena));
        if out.send((idx, result)).is_err() {
            // Dispatcher gone; nothing left to report to.
            break;
        }
    }
}
