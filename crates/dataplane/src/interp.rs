//! The execution engines: P4-16 semantics for the pipeline IR.
//!
//! [`Dataplane`] owns a compiled program plus its runtime state (tables,
//! registers, counters, meters) and processes packets one at a time
//! ([`Dataplane::process`]) or in batches ([`Dataplane::process_batch`]):
//!
//! 1. **Parse**: run the FSM from `start`; `extract` consumes bytes and
//!    marks headers valid; a `reject` transition — or running out of bytes —
//!    **drops the packet**, as P4-16 requires (this is the exact semantics
//!    the paper's SDNet backend violated);
//! 2. **Pipeline**: execute each control in order: table applies, ifs and
//!    primitive ops, with v1model-style drop semantics (`mark_to_drop` sets
//!    a flag that a later `egress_spec` write clears);
//! 3. **Deparse**: emit valid headers in deparse order, append the unparsed
//!    payload.
//!
//! Two engines implement these semantics and are **bit-identical** by
//! property test ([`Engine`], switched with [`Dataplane::set_engine`]):
//!
//! * [`Engine::Compiled`] (the default) — at load time the program is
//!   lowered to a flat instruction array ([`crate::compile`]) executed by
//!   a tight non-recursive loop: pre-resolved jumps instead of recursive
//!   statement walks, a value stack instead of expression-tree recursion,
//!   whole-byte header moves where the layout allows. This is the fast
//!   path every batch and fleet driver takes.
//! * [`Engine::Reference`] — the original tree-walking interpreter, kept
//!   as the executable specification. It is the differential oracle the
//!   parity property tests run the compiled engine against (same
//!   verdicts, traces, statistics and extern state on every packet), the
//!   same role the paper gives its reference model against hardware.
//!
//! Execution is split into `ExecCtx`-style borrows internally: the
//! read-mostly state (program IR, compiled code, table entry lists) is
//! borrowed shared, the per-shard mutable state (table statistics, extern
//! cells) is borrowed exclusively, so the hot path runs with **zero
//! per-packet clones** of parser ops, control bodies, table keys or
//! action bodies, and the unparsed payload is carried as a borrowed slice
//! until the deparser copies it into the output frame. All packet paths
//! reuse one per-dataplane scratch `Env`; tracing is opt-out on the batch
//! paths (see [`Dataplane::set_tracing`]) so throughput runs skip event
//! allocation entirely. The same read/write split is what lets
//! [`Dataplane::process_batch_parallel`] shard a batch across a
//! **persistent worker pool** (`crate::pool` — shard-pinned threads
//! spawned once, reused every batch; shared entries, per-shard stats
//! merged commutatively on join) and [`Dataplane::process_batch_with`]
//! stream traces through a [`TraceSink`] without materialising them.
//!
//! Egress conventions (documented device-model behaviour):
//! * `egress_spec` 0..510 — forward out of that port;
//! * `egress_spec` 511 — flood (all ports except ingress);
//! * no write to `egress_spec` — drop (`NoEgress`).

use crate::bits::{read_bits, write_bits};
use crate::cache::{CacheStats, FlowCache};
use crate::compile::{self, CompiledProgram};
use crate::control::{ControlError, ControlPlane};
use crate::externs::{ExternState, MeterConfig};
use crate::opt::PassConfig;
use crate::pool::{Job, PacketArena, ShardSpan, WorkerPool};
use crate::table::{EntrySnapshot, RuntimeEntry, TableState, TableStats, TableView};
use crate::trace::{DropReason, LazyTrace, Trace, TraceBuf, TraceSink, Verdict};
use netdebug_p4::ast::{BinOp, UnOp};
use netdebug_p4::ir::{
    self, truncate, Cacheability, IrExpr, IrStmt, IrTransition, LValue, Op, ParallelClass,
    TransTarget,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The flood "port" value in `egress_spec`.
pub const FLOOD_PORT: u128 = 511;

/// Maximum parser states visited per packet before declaring a loop.
pub(crate) const PARSER_STATE_BUDGET: usize = 256;

/// Which execution engine runs the packet paths.
///
/// Both engines implement identical semantics — the parity property
/// tests in `tests/prop.rs` pin verdicts, traces, statistics and extern
/// state bit-for-bit over the program corpus — so the switch trades
/// nothing but speed for auditability:
///
/// * [`Engine::Compiled`]: the flat bytecode engine compiled at load
///   time ([`crate::compile`]); the default everywhere.
/// * [`Engine::Reference`]: the tree-walking interpreter, retained as
///   the executable specification and differential oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Tree-walking reference interpreter (the specification oracle).
    Reference,
    /// Flat load-time-compiled bytecode engine (the fast default).
    Compiled,
}

/// Runtime value of one header instance.
#[derive(Debug, Clone)]
pub(crate) struct HeaderVal {
    pub(crate) valid: bool,
    pub(crate) fields: Vec<u128>,
}

/// Per-packet execution environment, shared by both engines.
///
/// All vectors are sized once per program and reset (not reallocated)
/// between packets, so a batch touches the allocator only for output
/// frames and traces.
#[derive(Debug)]
pub(crate) struct Env {
    pub(crate) headers: Vec<HeaderVal>,
    pub(crate) meta: Vec<u128>,
    pub(crate) locals: Vec<u128>,
    pub(crate) ingress_port: u128,
    pub(crate) egress_spec: u128,
    pub(crate) egress_written: bool,
    pub(crate) packet_length: u128,
    pub(crate) ts_cycles: u128,
    pub(crate) drop_flag: bool,
    pub(crate) exited: bool,
    /// Arguments of the action currently executing (reused buffer; table
    /// applies cannot nest inside actions, so a flat buffer suffices).
    pub(crate) action_args: Vec<u128>,
    /// Scratch for evaluated table/select keys (reused buffer).
    pub(crate) key_scratch: Vec<u128>,
    /// The compiled engine's value stack (reused buffer).
    pub(crate) stack: Vec<u128>,
}

impl Env {
    /// Allocate an environment shaped for `program`.
    pub(crate) fn new(program: &ir::Program) -> Self {
        Env {
            headers: program
                .headers
                .iter()
                .map(|h| HeaderVal {
                    valid: false,
                    fields: vec![0; h.fields.len()],
                })
                .collect(),
            meta: vec![0; program.metadata.len()],
            locals: vec![0; program.locals.len()],
            ingress_port: 0,
            egress_spec: 0,
            egress_written: false,
            packet_length: 0,
            ts_cycles: 0,
            drop_flag: false,
            exited: false,
            action_args: Vec::new(),
            key_scratch: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Reset for the next packet without releasing any allocation.
    pub(crate) fn reset(&mut self, port: u16, packet_len: usize, now_cycles: u64) {
        for h in &mut self.headers {
            h.valid = false;
            for f in &mut h.fields {
                *f = 0;
            }
        }
        for m in &mut self.meta {
            *m = 0;
        }
        for l in &mut self.locals {
            *l = 0;
        }
        self.ingress_port = u128::from(port);
        self.egress_spec = 0;
        self.egress_written = false;
        self.packet_length = packet_len as u128;
        self.ts_cycles = u128::from(now_cycles);
        self.drop_flag = false;
        self.exited = false;
        self.action_args.clear();
        self.key_scratch.clear();
    }
}

/// Reusable buffers for the meter-partitioning pre-pass: the union-find
/// parent array, the cell→first-packet map, the component size and
/// placement maps, and the per-shard load counters. Hoisted out of
/// `partition_by_cells` so the steady state of a metered stream reuses
/// one allocation set per data plane instead of three `HashMap`s (plus
/// two `Vec`s) per batch.
#[derive(Debug, Default)]
struct MeterScratch {
    parent: Vec<usize>,
    cell_owner: std::collections::HashMap<(usize, usize), usize>,
    comp_size: std::collections::HashMap<usize, usize>,
    comp_shard: std::collections::HashMap<usize, usize>,
    load: Vec<usize>,
}

/// A program plus its runtime state — one simulated data plane.
///
/// The state is deliberately split along the read/write axis:
///
/// * **read-mostly** — the program (immutable, behind an `Arc`), its
///   load-time-compiled bytecode ([`CompiledProgram`], also `Arc`-shared
///   with pool workers and clones) and the table entry lists: each table
///   publishes an immutable [`EntrySnapshot`] that the packet path pins
///   per batch, while the control plane — possibly from another thread,
///   through a detached [`ControlPlane`] handle — publishes successor
///   snapshots atomically. Parallel shards share the pinned snapshots by
///   reference; mid-batch installs never touch them.
/// * **per-shard mutable** — table hit/miss statistics (`table_stats`) and
///   extern state (`externs`); counters merge commutatively on shard join,
///   meter cells merge by per-shard cell ownership on the
///   meter-partitioned path, and register writers force the sequential
///   fallback (see [`Dataplane::process_batch_parallel`]).
#[derive(Debug)]
pub struct Dataplane {
    program: Arc<ir::Program>,
    /// The flat bytecode the default engine executes (compiled once at
    /// construction, shared with clones and pool workers).
    compiled: Arc<CompiledProgram>,
    /// Which engine the packet paths run ([`Engine::Compiled`] default).
    engine: Engine,
    tables: Arc<Vec<TableState>>,
    table_stats: Vec<TableStats>,
    externs: ExternState,
    packets_processed: u64,
    /// Batches that actually ran sharded (parallel path taken, not the
    /// sequential fallback) — observability for tests and benches.
    sharded_batches: u64,
    /// Packets quarantined as [`DropReason::EngineFault`] because their
    /// shard worker panicked and the solo replay panicked again.
    engine_faults: u64,
    tracing: bool,
    /// Cached `Program::parallel_class` — the program is immutable here.
    parallel_class: ParallelClass,
    /// Cached `Program::meter_sites` for the meter-partitioning pre-pass
    /// (empty unless `parallel_class` is `MeterPartitionable`).
    meter_sites: Vec<(usize, IrExpr)>,
    /// Whether any meter index expression reads packet contents (header
    /// fields, validity, parser-assigned metadata/locals). When false —
    /// e.g. a meter keyed purely on the ingress port — the pre-pass skips
    /// the parser replay entirely.
    meter_sites_read_packet: bool,
    /// Publication generation shared with every [`ControlPlane`] handle:
    /// bumped after each snapshot publication. The packet path re-pins
    /// `pin_cache` only when it moves, so steady-state processing pays
    /// one atomic load per pin point instead of a lock per table.
    generation: Arc<AtomicU64>,
    /// The pinned snapshots as of `pin_gen` (lazily refreshed).
    pin_cache: Vec<Arc<EntrySnapshot>>,
    /// Generation `pin_cache` was pinned at (0 = never pinned).
    pin_gen: u64,
    /// Shared with every [`ControlPlane`] handle: held across each
    /// publication and across a multi-table re-pin, so a pinned snapshot
    /// *set* always corresponds to a prefix of the publication order —
    /// never an interleaving that mixes a later mutation without an
    /// earlier one.
    publish_lock: Arc<std::sync::Mutex<()>>,
    /// The per-packet execution environment, allocated once and reused
    /// by every packet path (single-packet and batch alike).
    env_scratch: Env,
    /// The flat per-packet trace record buffer, allocated once and
    /// reused by every traced path; it grows to the batch's high-water
    /// event volume and stays there (see [`crate::trace::TraceBuf`]).
    trace_buf: TraceBuf,
    /// Meter pre-pass scratch (see [`MeterScratch`]).
    meter_scratch: MeterScratch,
    /// The epoch-keyed flow cache ([`crate::cache`]): present when the
    /// program is cacheable and caching is enabled. Memoizes the
    /// sequential packet paths; pool workers keep their own.
    flow_cache: Option<FlowCache>,
    /// Key-prefix bytes for this program's cache (None = program
    /// classified [`Cacheability::Uncacheable`], cache impossible).
    cache_key_cap: Option<usize>,
    /// Accumulated counters from pool-worker caches, merged on each
    /// sharded batch join (occupancy/capacity reflect the most recent
    /// sharded batch).
    shard_cache: CacheStats,
    /// Persistent shard workers, spawned lazily by the first parallel
    /// batch and reused for every one after (not cloned; a clone spawns
    /// its own on first use).
    pool: Option<WorkerPool>,
    /// Recycled packet arena for the pool paths (see `crate::pool`).
    arena_slot: Option<PacketArena>,
}

impl Clone for Dataplane {
    /// Deep-copies the runtime state: the clone gets its own table cells
    /// and publication counter (sharing the immutable current snapshots
    /// is safe — mutation always publishes fresh ones) so control-plane
    /// handles and installs on one copy never leak into the other. The
    /// compiled program and bytecode are shared; the worker pool is not
    /// (the clone spawns its own lazily). The table snapshots are
    /// captured under the publication lock, so even a clone taken during
    /// concurrent multi-table churn observes a publication-order prefix,
    /// never a torn cross-table cut.
    fn clone(&self) -> Self {
        let (tables, generation) = {
            let _guard = self.publish_lock.lock().expect("publish lock poisoned");
            (
                Arc::new(
                    self.tables
                        .iter()
                        .map(TableState::clone)
                        .collect::<Vec<_>>(),
                ),
                Arc::new(AtomicU64::new(self.generation.load(Ordering::Acquire))),
            )
        };
        Dataplane {
            program: Arc::clone(&self.program),
            compiled: Arc::clone(&self.compiled),
            engine: self.engine,
            tables,
            table_stats: self.table_stats.clone(),
            externs: self.externs.clone(),
            packets_processed: self.packets_processed,
            sharded_batches: self.sharded_batches,
            engine_faults: self.engine_faults,
            tracing: self.tracing,
            parallel_class: self.parallel_class,
            meter_sites: self.meter_sites.clone(),
            meter_sites_read_packet: self.meter_sites_read_packet,
            generation,
            pin_cache: self.pin_cache.clone(),
            pin_gen: self.pin_gen,
            publish_lock: Arc::new(std::sync::Mutex::new(())),
            env_scratch: Env::new(&self.program),
            trace_buf: TraceBuf::default(),
            meter_scratch: MeterScratch::default(),
            // The clone caches independently (its table state may diverge
            // immediately); it starts cold with its own counters.
            flow_cache: if self.flow_cache.is_some() {
                self.cache_key_cap.map(FlowCache::new)
            } else {
                None
            },
            cache_key_cap: self.cache_key_cap,
            shard_cache: CacheStats::default(),
            pool: None,
            arena_slot: None,
        }
    }
}

/// A consistent capture of a [`Dataplane`]'s runtime state, produced by
/// [`Dataplane::checkpoint`] and reinstated by [`Dataplane::restore`].
///
/// Table entry state is held as pinned `Arc<EntrySnapshot>`s — the same
/// immutable epochs the packet path pins — so a checkpoint costs one
/// `Arc` clone per table plus the extern/statistics copies, not a deep
/// copy of the entry lists. Checkpoints are the substrate of the
/// fault-recovery path: quarantined devices rewind to their last
/// checkpoint and replay forward past the culprit frame.
#[derive(Debug, Clone)]
pub struct DataplaneCheckpoint {
    snapshots: Vec<Arc<EntrySnapshot>>,
    externs: ExternState,
    table_stats: Vec<TableStats>,
    packets_processed: u64,
    sharded_batches: u64,
    engine_faults: u64,
}

impl DataplaneCheckpoint {
    /// The table epochs this checkpoint pinned, in table-declaration
    /// order.
    pub fn epochs(&self) -> Vec<u64> {
        self.snapshots.iter().map(|s| s.epoch()).collect()
    }
}

/// Split borrows for the execution hot path: the immutable program (IR
/// and compiled bytecode) and flattened table views on one side, the
/// mutable runtime state on the other. Holding the program through plain
/// shared references is what lets both engines walk parser states,
/// control bodies and action bodies without cloning them per packet, and
/// holding the pinned entry state through `&[TableView]` — resolved
/// **once per batch** from the pinned `Arc<EntrySnapshot>`s — is what
/// makes a table apply one slice index plus an index probe, no per-apply
/// `Arc` dereference, while parallel shards share the views read-only
/// and the control plane publishes new epochs mid-batch without
/// perturbing in-flight packets.
pub(crate) struct ExecCtx<'p> {
    pub(crate) program: &'p ir::Program,
    pub(crate) compiled: &'p CompiledProgram,
    pub(crate) engine: Engine,
    pub(crate) tables: TablesRef<'p>,
    pub(crate) table_stats: &'p mut [TableStats],
    pub(crate) externs: &'p mut ExternState,
}

/// How an execution context reaches the pinned table state.
///
/// The batch paths resolve the pins into a flat [`TableView`] array once
/// per batch (amortised over hundreds of packets); the single-packet
/// paths keep the pinned `Arc` slice directly — a one-packet call has
/// nothing to amortise a view array against, and the seed's per-apply
/// cost there was exactly one `Arc` dereference anyway.
#[derive(Clone, Copy)]
pub(crate) enum TablesRef<'p> {
    /// Per-batch flattened views: one slice index per apply.
    Views(&'p [TableView<'p>]),
    /// Pinned snapshots: one `Arc` dereference per apply.
    Pinned(&'p [Arc<EntrySnapshot>]),
}

impl<'p> TablesRef<'p> {
    #[inline]
    pub(crate) fn lookup(&self, tid: usize, keys: &[u128]) -> Option<&'p RuntimeEntry> {
        match self {
            TablesRef::Views(views) => views[tid].lookup(keys),
            TablesRef::Pinned(pinned) => pinned[tid].lookup(keys),
        }
    }
}

/// Resolve pinned snapshots into the per-batch flat [`TableView`] array.
/// Free function (not a method) so callers can keep disjoint borrows of
/// the other `Dataplane` fields while the views live.
fn resolve_views(pinned: &[Arc<EntrySnapshot>]) -> Vec<TableView<'_>> {
    pinned.iter().map(|s| s.view()).collect()
}

impl Dataplane {
    /// Instantiate a data plane for a compiled program (const entries
    /// installed, externs zeroed), with the default optimization
    /// pipeline applied to the bytecode.
    pub fn new(program: ir::Program) -> Self {
        Self::with_passes(program, PassConfig::default())
    }

    /// Instantiate with an explicit bytecode optimization configuration
    /// ([`PassConfig::none`] runs the raw lowering; individual passes
    /// toggle independently). Everything else matches
    /// [`Dataplane::new`].
    pub fn with_passes(program: ir::Program, passes: PassConfig) -> Self {
        let tables = program.tables.iter().map(TableState::new).collect();
        Self::assemble(program, tables, passes)
    }

    /// Instantiate with per-table capacity overrides (used by hardware
    /// backends that quantize or truncate table memories).
    pub fn with_table_capacities(program: ir::Program, capacities: &[u64]) -> Self {
        let tables = program
            .tables
            .iter()
            .zip(capacities)
            .map(|(t, cap)| TableState::with_capacity(t, *cap))
            .collect();
        Self::assemble(program, tables, PassConfig::default())
    }

    fn assemble(program: ir::Program, tables: Vec<TableState>, passes: PassConfig) -> Self {
        let externs = ExternState::new(&program.externs);
        let table_stats = vec![TableStats::default(); program.tables.len()];
        let parallel_class = program.parallel_class();
        let meter_sites = if parallel_class == ParallelClass::MeterPartitionable {
            program.meter_sites()
        } else {
            Vec::new()
        };
        let meter_sites_read_packet = program.meter_pre_pass_needs_parse();
        let compiled = Arc::new(CompiledProgram::compile_with(&program, passes));
        let env_scratch = Env::new(&program);
        let cache_key_cap = match program.cacheability() {
            Cacheability::Cacheable => program
                .parser_longest_path_bits()
                .map(|bits| (bits as usize).div_ceil(8)),
            Cacheability::Uncacheable => None,
        };
        Dataplane {
            program: Arc::new(program),
            compiled,
            engine: Engine::Compiled,
            tables: Arc::new(tables),
            table_stats,
            externs,
            packets_processed: 0,
            sharded_batches: 0,
            engine_faults: 0,
            tracing: true,
            parallel_class,
            meter_sites,
            meter_sites_read_packet,
            generation: Arc::new(AtomicU64::new(1)),
            pin_cache: Vec::new(),
            pin_gen: 0,
            publish_lock: Arc::new(std::sync::Mutex::new(())),
            env_scratch,
            trace_buf: TraceBuf::default(),
            meter_scratch: MeterScratch::default(),
            flow_cache: cache_key_cap.map(FlowCache::new),
            cache_key_cap,
            shard_cache: CacheStats::default(),
            pool: None,
            arena_slot: None,
        }
    }

    /// Instantiate with the optimization configuration
    /// [`crate::opt::autotune`] picks by micro-benchmarking every pass
    /// combination on `sample` (a small `(port, frame)` batch shaped
    /// like the expected traffic). Falls back to [`PassConfig::default`]
    /// on an empty sample.
    pub fn with_autotuned_passes(program: ir::Program, sample: &[(u16, Vec<u8>)]) -> Self {
        let passes = crate::opt::autotune(&program, sample);
        Self::with_passes(program, passes)
    }

    /// Whether batches of this program may be split into arbitrary
    /// contiguous chunks across threads ([`ParallelClass::Safe`]). Meter
    /// programs are *also* shardable (by meter-cell partitioning) — see
    /// [`Dataplane::parallel_class`] for the full picture.
    pub fn parallel_safe(&self) -> bool {
        self.parallel_class == ParallelClass::Safe
    }

    /// How [`Dataplane::process_batch_parallel`] may shard this program's
    /// batches (cached [`netdebug_p4::ir::Program::parallel_class`]).
    pub fn parallel_class(&self) -> ParallelClass {
        self.parallel_class
    }

    /// Which engine the packet paths execute ([`Engine::Compiled`] unless
    /// switched).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Switch the execution engine.
    ///
    /// [`Engine::Compiled`] is the default on every path (single-packet,
    /// batch, parallel, streaming). [`Engine::Reference`] selects the
    /// tree-walking oracle — differential self-validation runs the same
    /// traffic through both and asserts bit-identical verdicts, traces,
    /// statistics and extern state (see the parity property tests).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// A detached control-plane handle: clone it onto any thread and
    /// install/remove/clear entries **while batches run**; every mutation
    /// publishes a new table epoch atomically, and in-flight shards keep
    /// the snapshot they pinned. Priority semantics are the data plane's
    /// own (hardware-bug transforms such as priority inversion live in
    /// `netdebug-hw`'s `Device::install`, not here).
    pub fn control_plane(&self) -> ControlPlane {
        ControlPlane::new(
            Arc::clone(&self.program),
            Arc::clone(&self.tables),
            Arc::clone(&self.generation),
            Arc::clone(&self.publish_lock),
        )
    }

    /// Capture a checkpoint of the runtime state: the published table
    /// snapshots (pinned `Arc`s — O(tables), no entry copies), extern
    /// counters/registers/meters, table statistics and the processing
    /// counters. The snapshot set is captured under the publication lock,
    /// so even a checkpoint taken during concurrent multi-table churn
    /// observes a publication-order prefix, never a torn cross-table cut.
    pub fn checkpoint(&self) -> DataplaneCheckpoint {
        let snapshots = {
            let _guard = self.publish_lock.lock().expect("publish lock poisoned");
            self.tables.iter().map(TableState::snapshot).collect()
        };
        DataplaneCheckpoint {
            snapshots,
            externs: self.externs.clone(),
            table_stats: self.table_stats.clone(),
            packets_processed: self.packets_processed,
            sharded_batches: self.sharded_batches,
            engine_faults: self.engine_faults,
        }
    }

    /// Reinstate a [`DataplaneCheckpoint`] taken from this data plane (or
    /// a clone sharing its program): table snapshots swap back to the
    /// checkpointed epochs, externs and statistics are overwritten, and
    /// the publication generation is *bumped* (not rewound) so pinned
    /// snapshot caches and the epoch-keyed flow cache re-pin on the next
    /// batch instead of serving post-checkpoint state.
    pub fn restore(&mut self, checkpoint: &DataplaneCheckpoint) {
        {
            let _guard = self.publish_lock.lock().expect("publish lock poisoned");
            for (table, snapshot) in self.tables.iter().zip(&checkpoint.snapshots) {
                table.restore(Arc::clone(snapshot));
            }
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        self.externs = checkpoint.externs.clone();
        self.table_stats = checkpoint.table_stats.clone();
        self.packets_processed = checkpoint.packets_processed;
        self.sharded_batches = checkpoint.sharded_batches;
        self.engine_faults = checkpoint.engine_faults;
    }

    /// The compiled program.
    pub fn program(&self) -> &ir::Program {
        &self.program
    }

    /// The load-time-compiled bytecode the default engine executes.
    pub fn compiled_program(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// A printable disassembly of the (optimized) bytecode — one line
    /// per instruction with mnemonic, resolved names and jump targets.
    /// Compare against `Dataplane::with_passes(.., PassConfig::none())`
    /// to inspect what the optimization pipeline changed.
    pub fn disassemble(&self) -> crate::disasm::Disassembly<'_> {
        self.compiled.disassemble()
    }

    /// Packets processed since construction.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Batches that actually executed on the sharded parallel path (i.e.
    /// did not take the sequential fallback) since construction.
    pub fn sharded_batches(&self) -> u64 {
        self.sharded_batches
    }

    /// Packets quarantined as [`DropReason::EngineFault`] (their shard
    /// worker panicked and the sequential solo replay panicked again)
    /// since construction. Zero on a healthy engine.
    pub fn engine_faults(&self) -> u64 {
        self.engine_faults
    }

    /// The optimization passes the bytecode was compiled with.
    pub fn passes(&self) -> PassConfig {
        self.compiled.passes()
    }

    /// Flow-cache counters: hits, misses, invalidations, occupancy and
    /// capacity, aggregated over the sequential cache and every
    /// pool-worker cache seen so far. All-zero when the program is
    /// uncacheable or the cache is disabled.
    pub fn cache_stats(&self) -> CacheStats {
        let mut s = self
            .flow_cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default();
        s.absorb(&self.shard_cache);
        s
    }

    /// Whether the flow cache is active (the program classified
    /// [`Cacheability::Cacheable`] and caching has not been switched
    /// off).
    pub fn flow_cache_enabled(&self) -> bool {
        self.flow_cache.is_some()
    }

    /// Enable or disable the flow cache. Enabling is a no-op for
    /// programs the cacheability analysis rejects; disabling drops the
    /// resident entries (re-enabling starts cold) but keeps the
    /// accumulated [`Dataplane::cache_stats`] counters from pool
    /// workers.
    pub fn set_flow_cache(&mut self, enabled: bool) {
        self.flow_cache = if enabled {
            self.cache_key_cap.map(FlowCache::new)
        } else {
            None
        };
    }

    /// Live worker threads in the persistent shard pool (0 until the
    /// first parallel batch spawns them) — observability for tests.
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.worker_count())
    }

    /// Whether [`Dataplane::process_batch`] records per-packet traces.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Turn batch-path tracing on or off.
    ///
    /// Tracing defaults to **on** (every packet gets a full [`Trace`], as
    /// the single-packet [`Dataplane::process`] always has). Turning it off
    /// is the fast path for throughput work: `process_batch` then returns
    /// `None` traces and allocates nothing per packet beyond the output
    /// frame.
    pub fn set_tracing(&mut self, tracing: bool) {
        self.tracing = tracing;
    }

    // ------------------------------------------------------------------
    // Control-plane API
    // ------------------------------------------------------------------

    fn extern_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .extern_by_name(name)
            .ok_or_else(|| ControlError::NoSuchExtern(name.to_string()))
    }

    /// Install an arbitrary entry (publishes a new table epoch; see
    /// [`Dataplane::control_plane`] for the detached, mid-batch-capable
    /// handle these methods delegate to).
    pub fn install(
        &mut self,
        table: &str,
        patterns: Vec<ir::IrPattern>,
        action: &str,
        args: Vec<u128>,
        priority: i32,
    ) -> Result<(), ControlError> {
        self.control_plane()
            .install(table, patterns, action, args, priority)?;
        Ok(())
    }

    /// Install an exact-match entry (one value per key).
    pub fn install_exact(
        &mut self,
        table: &str,
        keys: Vec<u128>,
        action: &str,
        args: Vec<u128>,
    ) -> Result<(), ControlError> {
        self.control_plane()
            .install_exact(table, keys, action, args)?;
        Ok(())
    }

    /// Install an LPM entry on a single-key LPM table (priority = prefix
    /// length, so longest prefix wins).
    pub fn install_lpm(
        &mut self,
        table: &str,
        prefix: u128,
        prefix_len: u16,
        action: &str,
        args: Vec<u128>,
    ) -> Result<(), ControlError> {
        self.control_plane()
            .install_lpm(table, prefix, prefix_len, action, args)?;
        Ok(())
    }

    /// Read a counter cell: (packets, bytes).
    pub fn counter(&self, name: &str, index: usize) -> Result<(u64, u64), ControlError> {
        Ok(self.externs.counter_read(self.extern_id(name)?, index))
    }

    /// Read a register cell.
    pub fn register(&self, name: &str, index: usize) -> Result<u128, ControlError> {
        Ok(self.externs.register_read(self.extern_id(name)?, index))
    }

    /// Write a register cell from the control plane.
    pub fn set_register(
        &mut self,
        name: &str,
        index: usize,
        value: u128,
    ) -> Result<(), ControlError> {
        let id = self.extern_id(name)?;
        self.externs.register_write(id, index, value);
        Ok(())
    }

    /// Configure a meter cell.
    pub fn configure_meter(
        &mut self,
        name: &str,
        index: usize,
        config: MeterConfig,
    ) -> Result<(), ControlError> {
        let id = self.extern_id(name)?;
        self.externs.meter_configure(id, index, config);
        Ok(())
    }

    /// Hit/miss/occupancy statistics for a table.
    pub fn table_stats(&self, name: &str) -> Result<(u64, u64, usize, u64), ControlError> {
        let tid = self
            .program
            .table_by_name(name)
            .ok_or_else(|| ControlError::NoSuchTable(name.to_string()))?;
        let t = &self.tables[tid];
        let s = &self.table_stats[tid];
        Ok((s.hits, s.misses, t.len(), t.capacity()))
    }

    /// Refresh the pinned snapshots in `pin_cache` if any publication
    /// happened since they were last pinned. This is the single
    /// epoch-pinning point of every packet path: consulted once per batch
    /// on the batch paths (one coherent table state per window) and once
    /// per packet on the single-packet paths (each packet observes the
    /// epochs current at its injection instant). Steady state — no churn
    /// in flight — costs one atomic load; only an actual publication pays
    /// the per-table lock-and-clone re-pin. The generation is bumped
    /// *after* the snapshot swap, so observing a new generation always
    /// means the new snapshots are visible (re-pinning at a stale
    /// generation merely re-pins once more on the next call).
    fn refresh_pins(&mut self) {
        if self.generation.load(Ordering::Acquire) == self.pin_gen {
            return;
        }
        // Re-pin under the publication lock: no mutation can land between
        // the first and the last table's pin, so the pinned set is always
        // a publication-order prefix — even for multi-table churn.
        let _guard = self.publish_lock.lock().expect("publish lock poisoned");
        self.pin_cache.clear();
        self.pin_cache
            .extend(self.tables.iter().map(|t| t.snapshot()));
        self.pin_gen = self.generation.load(Ordering::Acquire);
    }

    /// Align the flow cache with the pinned generation (must follow
    /// [`Dataplane::refresh_pins`] on every cached packet path): a
    /// publication since the entries were recorded drops them all.
    fn sync_cache(&mut self) {
        if let Some(c) = self.flow_cache.as_mut() {
            c.sync_generation(self.pin_gen);
        }
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    /// Process a packet arriving on `port` at device time `now_cycles`,
    /// recording a full trace.
    pub fn process(&mut self, port: u16, data: &[u8], now_cycles: u64) -> (Verdict, Trace) {
        self.packets_processed += 1;
        self.refresh_pins();
        self.sync_cache();
        let buf = &mut self.trace_buf;
        let cache = self.flow_cache.as_mut();
        let mut ctx = ExecCtx {
            program: &self.program,
            compiled: &self.compiled,
            engine: self.engine,
            tables: TablesRef::Pinned(&self.pin_cache),
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        let verdict = ctx.run_one(
            cache,
            port,
            data,
            now_cycles,
            &mut self.env_scratch,
            buf,
            true,
        );
        let trace = LazyTrace::over(buf, ctx.compiled.names()).decode();
        (verdict, trace)
    }

    /// Process without tracing (fast path for throughput benchmarks).
    pub fn process_untraced(&mut self, port: u16, data: &[u8], now_cycles: u64) -> Verdict {
        self.packets_processed += 1;
        self.refresh_pins();
        self.sync_cache();
        let buf = &mut self.trace_buf;
        let cache = self.flow_cache.as_mut();
        let mut ctx = ExecCtx {
            program: &self.program,
            compiled: &self.compiled,
            engine: self.engine,
            tables: TablesRef::Pinned(&self.pin_cache),
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        ctx.run_one(
            cache,
            port,
            data,
            now_cycles,
            &mut self.env_scratch,
            buf,
            false,
        )
    }

    /// Process a whole batch of `(ingress port, frame)` pairs arriving at
    /// device time `now_cycles`.
    ///
    /// Semantically identical to calling [`Dataplane::process`] once per
    /// packet in order (table/extern state threads through the batch), but
    /// the per-packet execution environment is allocated once and reused,
    /// and when tracing is disabled ([`Dataplane::set_tracing`]) no trace
    /// events are recorded at all. Each element of the result is the
    /// packet's verdict plus its trace (`None` when tracing is off).
    pub fn process_batch(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
    ) -> Vec<(Verdict, Option<Trace>)> {
        self.packets_processed += pkts.len() as u64;
        let tracing = self.tracing;
        self.refresh_pins();
        self.sync_cache();
        let views = resolve_views(&self.pin_cache);
        let env = &mut self.env_scratch;
        let buf = &mut self.trace_buf;
        let mut cache = self.flow_cache.as_mut();
        let mut ctx = ExecCtx {
            program: &self.program,
            compiled: &self.compiled,
            engine: self.engine,
            tables: TablesRef::Views(&views),
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        // Each packet records into the one reused flat buffer; the
        // returned owned trace is decoded from it, pre-sized exactly
        // from the record count (no predecessor heuristic).
        pkts.iter()
            .map(|&(port, data)| {
                let verdict = ctx.run_one(
                    cache.as_deref_mut(),
                    port,
                    data,
                    now_cycles,
                    env,
                    buf,
                    tracing,
                );
                let trace = tracing.then(|| LazyTrace::over(buf, ctx.compiled.names()).decode());
                (verdict, trace)
            })
            .collect()
    }

    /// Process a batch, streaming each packet's trace into `sink` instead
    /// of materialising it.
    ///
    /// One flat record buffer is reused for the whole batch; the sink
    /// observes each packet's events as an undecoded [`LazyTrace`]
    /// borrowing that buffer ([`LazyTrace::decode`] to keep). Verdicts
    /// come back in batch order. When tracing is disabled
    /// ([`Dataplane::set_tracing`]) the sink still sees every packet,
    /// with an empty trace. Semantically identical to
    /// [`Dataplane::process_batch`] — this is the zero-allocation spine
    /// under traced device batching: a sink that only counts or inspects
    /// names never allocates per packet at all.
    pub fn process_batch_with(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        sink: &mut dyn TraceSink,
    ) -> Vec<Verdict> {
        self.packets_processed += pkts.len() as u64;
        let tracing = self.tracing;
        self.refresh_pins();
        self.sync_cache();
        let views = resolve_views(&self.pin_cache);
        let env = &mut self.env_scratch;
        let buf = &mut self.trace_buf;
        let mut cache = self.flow_cache.as_mut();
        let mut ctx = ExecCtx {
            program: &self.program,
            compiled: &self.compiled,
            engine: self.engine,
            tables: TablesRef::Views(&views),
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        pkts.iter()
            .enumerate()
            .map(|(i, &(port, data))| {
                let verdict = ctx.run_one(
                    cache.as_deref_mut(),
                    port,
                    data,
                    now_cycles,
                    env,
                    buf,
                    tracing,
                );
                sink.observe(i, &verdict, &LazyTrace::over(buf, ctx.compiled.names()));
                verdict
            })
            .collect()
    }

    /// Process a batch sharded across up to `shards` worker threads of
    /// the persistent pool.
    ///
    /// Workers are spawned **once** (lazily, by the first parallel batch)
    /// and reused for every batch after — `crate::pool` — so the steady
    /// state pays no thread spawn/join; the batch's frames are copied
    /// once into a recycled arena the workers share. Every worker shares
    /// the program, compiled bytecode and the **pinned** table snapshots
    /// read-only (control-plane installs landing mid-batch publish new
    /// epochs without touching the pins) and owns its shard's mutable
    /// state — zeroed [`TableStats`] and an [`ExternState`] clone with
    /// zeroed counters ([`ExternState::shard_clone`]). On join the
    /// statistics merge commutatively (counter sums, hit/miss sums), so
    /// repeated runs produce identical state regardless of thread
    /// scheduling. How the batch splits follows
    /// [`Dataplane::parallel_class`]:
    ///
    /// * [`ParallelClass::Safe`] — contiguous balanced chunks (ceil/floor
    ///   split; every spawned shard receives at least one packet).
    /// * [`ParallelClass::MeterPartitionable`] — a pre-pass replays the
    ///   parser to evaluate each packet's meter-cell indices, then packets
    ///   are partitioned so that all packets touching a given meter cell
    ///   land on the same shard (batch order preserved within a shard, and
    ///   hence within every cell). Each shard's meter cells evolve exactly
    ///   as they would sequentially; on join the owned cells are copied
    ///   back and the results scattered into batch order.
    /// * [`ParallelClass::Sequential`] (register writers), `shards <= 1`,
    ///   or a batch of fewer than 2 packets — the sequential path runs
    ///   instead.
    ///
    /// Results are **bit-identical** to [`Dataplane::process_batch`] on
    /// every path and under either [`Engine`];
    /// [`Dataplane::sharded_batches`] reports whether the parallel engine
    /// actually ran.
    pub fn process_batch_parallel(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        shards: usize,
    ) -> Vec<(Verdict, Option<Trace>)> {
        let shards = shards.min(pkts.len());
        if shards <= 1 || self.parallel_class == ParallelClass::Sequential {
            return self.process_batch(pkts, now_cycles);
        }
        match self.parallel_class {
            ParallelClass::Safe => self.parallel_contiguous(pkts, now_cycles, shards),
            ParallelClass::MeterPartitionable => {
                self.parallel_meter_partitioned(pkts, now_cycles, shards)
            }
            ParallelClass::Sequential => unreachable!("handled above"),
        }
    }

    /// Copy the batch into the recycled arena and build one pool job per
    /// shard span. `refresh_pins` must have run (the jobs share the
    /// current pin set).
    fn build_jobs(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        spans: Vec<ShardSpan>,
    ) -> (Arc<PacketArena>, Vec<Job>) {
        let mut arena = self.arena_slot.take().unwrap_or_default();
        arena.fill(pkts);
        let arena = Arc::new(arena);
        let pins = Arc::new(self.pin_cache.clone());
        let jobs = spans
            .into_iter()
            .map(|span| Job {
                program: Arc::clone(&self.program),
                compiled: Arc::clone(&self.compiled),
                pins: Arc::clone(&pins),
                arena: Arc::clone(&arena),
                span,
                externs: self.externs.shard_clone(),
                tracing: self.tracing,
                engine: self.engine,
                now_cycles,
                // Workers cache only while the owning data plane does.
                cache_key_cap: self.flow_cache.as_ref().map(|c| c.key_cap()),
                pin_gen: self.pin_gen,
            })
            .collect();
        (arena, jobs)
    }

    /// Run the jobs on the persistent pool and reclaim the arena buffer
    /// for the next batch. A shard whose worker panicked comes back as
    /// `Err(span)`; the caller replays it via [`Dataplane::recover_shard`].
    fn dispatch_jobs(
        &mut self,
        arena: Arc<PacketArena>,
        jobs: Vec<Job>,
    ) -> Vec<Result<ShardResult, ShardSpan>> {
        let results = self.pool.get_or_insert_with(WorkerPool::new).run(jobs);
        // Every worker dropped its handle before reporting, so the arena
        // is ours again — recycle its buffers.
        if let Ok(arena) = Arc::try_unwrap(arena) {
            self.arena_slot = Some(arena);
        }
        results
    }

    /// Sequential replay of a shard whose worker panicked: each packet of
    /// the span runs **solo** under `catch_unwind`, so one poisoned frame
    /// cannot take the batch (or the process) down. A packet that panics
    /// again is quarantined as [`Verdict::Drop`]`(`[`DropReason::EngineFault`]`)`
    /// with no trace and counted in [`Dataplane::engine_faults`]; the
    /// others produce their normal verdicts through the sequential path.
    ///
    /// Best-effort semantics, documented trade-offs: the panicked shard's
    /// partial work died with its shard-cloned state (no double counting),
    /// the replay runs against the *live* epoch (a mid-batch publication
    /// may be visible to replayed packets where the doomed shard had
    /// pinned an earlier one), and a packet that dies mid-flight may
    /// leave partial statistics from the work it completed before dying.
    fn recover_shard(
        &mut self,
        pkts: &[(u16, &[u8])],
        span: &ShardSpan,
        now_cycles: u64,
    ) -> Vec<(Verdict, Option<Trace>)> {
        let indices: Vec<usize> = match span {
            ShardSpan::Contiguous(range) => range.clone().collect(),
            ShardSpan::Indexed(list) => list.clone(),
        };
        // The per-packet `process_batch` calls below re-count their
        // packets; the parallel dispatcher already counted the whole
        // batch, so compensate up front.
        self.packets_processed -= indices.len() as u64;
        let mut out = Vec::with_capacity(indices.len());
        for i in indices {
            let one = [pkts[i]];
            let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.process_batch(&one, now_cycles)
            }));
            match replay {
                Ok(mut verdicts) => {
                    out.push(verdicts.pop().expect("one packet in, one verdict out"))
                }
                Err(_) => {
                    self.packets_processed += 1;
                    self.engine_faults += 1;
                    out.push((Verdict::Drop(DropReason::EngineFault), None));
                }
            }
        }
        out
    }

    /// The `Safe` parallel path: contiguous balanced chunks.
    fn parallel_contiguous(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        shards: usize,
    ) -> Vec<(Verdict, Option<Trace>)> {
        self.packets_processed += pkts.len() as u64;
        self.sharded_batches += 1;
        self.refresh_pins();
        let spans = chunk_ranges(pkts.len(), shards)
            .into_iter()
            .map(ShardSpan::Contiguous)
            .collect();
        let (arena, jobs) = self.build_jobs(pkts, now_cycles, spans);
        let shard_results = self.dispatch_jobs(arena, jobs);

        let mut out = Vec::with_capacity(pkts.len());
        // Occupancy/capacity are instantaneous: re-derive them from this
        // batch's shards while the counters keep accumulating.
        self.shard_cache.occupancy = 0;
        self.shard_cache.capacity = 0;
        for shard in shard_results {
            match shard {
                Ok(shard) => {
                    out.extend(shard.results);
                    for (mine, theirs) in self.table_stats.iter_mut().zip(&shard.stats) {
                        mine.absorb(theirs);
                    }
                    self.externs.absorb_counters(&shard.externs);
                    self.shard_cache.absorb(&shard.cache);
                }
                // Worker panicked: replay this span's packets solo, in
                // batch order (contiguous spans arrive in shard order, so
                // the merge order is unchanged).
                Err(span) => out.extend(self.recover_shard(pkts, &span, now_cycles)),
            }
        }
        out
    }

    /// The `MeterPartitionable` parallel path: pre-evaluate meter cells,
    /// partition by cell, run shards on index lists, scatter back.
    fn parallel_meter_partitioned(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        shards: usize,
    ) -> Vec<(Verdict, Option<Trace>)> {
        let cells = self.meter_cells_for_batch(pkts, now_cycles);
        let shard_indices = partition_by_cells(&mut self.meter_scratch, &cells, shards);
        if shard_indices.len() <= 1 {
            // Every packet shares one meter-cell component: sharding would
            // put the whole batch on one thread anyway.
            return self.process_batch(pkts, now_cycles);
        }
        self.packets_processed += pkts.len() as u64;
        self.sharded_batches += 1;
        self.refresh_pins();
        let spans = shard_indices
            .iter()
            .map(|indices| ShardSpan::Indexed(indices.clone()))
            .collect();
        let (arena, jobs) = self.build_jobs(pkts, now_cycles, spans);
        let shard_results = self.dispatch_jobs(arena, jobs);

        // Scatter results back to batch order and merge state. Each meter
        // cell is owned by exactly one shard (the partitioning invariant),
        // so copying owned cells back reproduces the sequential per-cell
        // token-bucket evolution exactly.
        let mut slots: Vec<Option<(Verdict, Option<Trace>)>> = Vec::new();
        slots.resize_with(pkts.len(), || None);
        self.shard_cache.occupancy = 0;
        self.shard_cache.capacity = 0;
        for (indices, shard) in shard_indices.iter().zip(shard_results) {
            match shard {
                Ok(shard) => {
                    for (&i, res) in indices.iter().zip(shard.results) {
                        slots[i] = Some(res);
                    }
                    for (mine, theirs) in self.table_stats.iter_mut().zip(&shard.stats) {
                        mine.absorb(theirs);
                    }
                    self.externs.absorb_counters(&shard.externs);
                    self.shard_cache.absorb(&shard.cache);
                    let owned: std::collections::BTreeSet<(usize, usize)> = indices
                        .iter()
                        .flat_map(|&i| cells[i].iter().copied())
                        .collect();
                    for &(id, idx) in &owned {
                        self.externs.adopt_meter_cell(&shard.externs, id, idx);
                    }
                }
                // Worker panicked. The replay runs on the live externs, so
                // this shard's owned meter cells evolve in place (per-cell
                // order preserved — each cell is owned by one shard).
                Err(span) => {
                    let recovered = self.recover_shard(pkts, &span, now_cycles);
                    for (&i, res) in indices.iter().zip(recovered) {
                        slots[i] = Some(res);
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every packet assigned to exactly one shard"))
            .collect()
    }

    /// Pre-pass for the meter-partitioned path: replay the parser for each
    /// packet (no table applies, no extern effects, no statistics) and
    /// evaluate every meter site's index expression. Sound because
    /// `MeterPartitionable` classification guarantees the indices depend
    /// only on parser-determined state. Always runs the reference parser
    /// regardless of [`Engine`] — partitioning only decides *placement*,
    /// so both engines shard identically by construction.
    fn meter_cells_for_batch(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
    ) -> Vec<Vec<(usize, usize)>> {
        let prog: &ir::Program = &self.program;
        let env = &mut self.env_scratch;
        pkts.iter()
            .map(|&(port, data)| {
                env.reset(port, data.len(), now_cycles);
                // Indices that never read packet contents (e.g. a meter
                // keyed on the ingress port) need no parser replay at all.
                if self.meter_sites_read_packet {
                    let mut no_trace: Option<&mut TraceBuf> = None;
                    // A rejected parse means no meter ever executes for
                    // this packet; the (deterministic) partially-parsed
                    // evaluation below merely over-constrains placement.
                    let _ = parse_packet(prog, data, env, &mut no_trace);
                }
                self.meter_sites
                    .iter()
                    .map(|(id, idx)| (*id, eval(prog, idx, env) as usize))
                    .collect()
            })
            .collect()
    }
}

/// Contiguous balanced split of `len` items into exactly `shards`
/// non-empty ranges (requires `shards <= len`): the first `len % shards`
/// ranges take one extra item. No shard ever receives zero packets, even
/// when `len` is barely above `shards`.
fn chunk_ranges(len: usize, shards: usize) -> Vec<core::ops::Range<usize>> {
    let base = len / shards;
    let rem = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < rem);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Partition packet indices into at most `shards` non-empty lists such
/// that all packets touching the same meter cell share a list, preserving
/// batch order within each list. Packets are connected into components via
/// union-find over shared cells; components are placed (in order of first
/// appearance) onto the currently least-loaded shard, which is
/// deterministic by construction. All working storage lives in the
/// caller's [`MeterScratch`] and is reused batch to batch.
fn partition_by_cells(
    scratch: &mut MeterScratch,
    cells: &[Vec<(usize, usize)>],
    shards: usize,
) -> Vec<Vec<usize>> {
    let n = cells.len();
    let parent = &mut scratch.parent;
    parent.clear();
    parent.extend(0..n);
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let cell_owner = &mut scratch.cell_owner;
    cell_owner.clear();
    for (i, pkt_cells) in cells.iter().enumerate() {
        for cell in pkt_cells {
            match cell_owner.entry(*cell) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let a = find(parent, i);
                    let b = find(parent, *e.get());
                    // Union by lower root for determinism.
                    let (lo, hi) = (a.min(b), a.max(b));
                    parent[hi] = lo;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                }
            }
        }
    }
    let comp_size = &mut scratch.comp_size;
    comp_size.clear();
    for i in 0..n {
        let root = find(parent, i);
        *comp_size.entry(root).or_default() += 1;
    }
    let comp_shard = &mut scratch.comp_shard;
    comp_shard.clear();
    let load = &mut scratch.load;
    load.clear();
    load.resize(shards, 0);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for i in 0..n {
        let root = find(parent, i);
        let shard = *comp_shard.entry(root).or_insert_with(|| {
            let s = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .expect("shards > 0");
            load[s] += comp_size[&root];
            s
        });
        out[shard].push(i);
    }
    out.retain(|v| !v.is_empty());
    out
}

/// Run one shard's packet list against the batch's flattened table views
/// with freshly zeroed per-shard statistics and the given shard-cloned
/// extern state. Shared by the pool workers (contiguous and
/// meter-partitioned spans alike); the views borrow snapshots pinned
/// before dispatch, so every shard reads one coherent epoch set whatever
/// the control plane does.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shard<'a>(
    program: &ir::Program,
    compiled: &CompiledProgram,
    engine: Engine,
    pinned: &[TableView<'_>],
    mut externs: ExternState,
    pkts: impl Iterator<Item = (u16, &'a [u8])>,
    tracing: bool,
    now_cycles: u64,
    env: &mut Env,
    scratch: &mut TraceBuf,
    mut cache: Option<&mut FlowCache>,
    pin_gen: u64,
) -> ShardResult {
    let mut stats = vec![TableStats::default(); pinned.len()];
    // The worker cache persists across batches; align it with the epoch
    // the dispatching data plane pinned this batch at, and report only
    // this batch's counter deltas back for the merge.
    let cache_before = cache.as_deref_mut().map(|c| {
        c.sync_generation(pin_gen);
        c.stats()
    });
    let mut ctx = ExecCtx {
        program,
        compiled,
        engine,
        tables: TablesRef::Views(pinned),
        table_stats: &mut stats,
        externs: &mut externs,
    };
    let results = pkts
        .map(|(port, data)| {
            // The flat record buffer sizes the decoded trace exactly —
            // one record walk counts events before a single allocation.
            let verdict = ctx.run_one(
                cache.as_deref_mut(),
                port,
                data,
                now_cycles,
                env,
                scratch,
                tracing,
            );
            let trace = tracing.then(|| LazyTrace::over(scratch, ctx.compiled.names()).decode());
            (verdict, trace)
        })
        .collect();
    let cache_delta = match (cache, cache_before) {
        (Some(c), Some(before)) => c.stats().delta_since(&before),
        _ => CacheStats::default(),
    };
    ShardResult {
        results,
        stats,
        externs,
        cache: cache_delta,
    }
}

/// What one parallel shard hands back on join.
pub(crate) struct ShardResult {
    pub(crate) results: Vec<(Verdict, Option<Trace>)>,
    pub(crate) stats: Vec<TableStats>,
    pub(crate) externs: ExternState,
    /// This batch's flow-cache counter deltas (plus the worker cache's
    /// instantaneous occupancy/capacity).
    pub(crate) cache: CacheStats,
}

impl ExecCtx<'_> {
    /// Run one packet with full tracing: clears the flat record buffer,
    /// records every event and appends the final verdict summary. The
    /// single finalisation point shared by every traced path —
    /// single-packet, batch, streaming and parallel shards, under either
    /// engine — which is what keeps their traces bit-identical (the
    /// equivalence the proptests pin down).
    pub(crate) fn run_traced(
        &mut self,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        env: &mut Env,
        trace: &mut TraceBuf,
    ) -> Verdict {
        trace.clear();
        let verdict = self.run(port, data, now_cycles, env, Some(trace), None);
        trace.final_verdict(&verdict);
        verdict
    }

    /// Run one packet through the flow cache when one is active: a hit
    /// replays the memoized outcome (table statistics, counter bumps,
    /// trace bytes, verdict) without entering either engine; a miss runs
    /// the compiled engine with outcome recording and commits the entry.
    /// With no cache — uncacheable program, cache disabled, or the
    /// reference engine (which stays the unmemoized oracle) — this is
    /// exactly the pre-cache traced/untraced path. `buf` always leaves
    /// holding the packet's trace records when `tracing` (final-verdict
    /// record included) and empty otherwise, so streaming consumers see
    /// identical event streams either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_one(
        &mut self,
        cache: Option<&mut FlowCache>,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        env: &mut Env,
        buf: &mut TraceBuf,
        tracing: bool,
    ) -> Verdict {
        let cache = match cache {
            Some(c) if self.engine == Engine::Compiled => c,
            _ => {
                return if tracing {
                    self.run_traced(port, data, now_cycles, env, buf)
                } else {
                    buf.clear();
                    self.run(port, data, now_cycles, env, None, None)
                };
            }
        };
        if let Some(v) = cache.lookup(port, data, tracing, self.table_stats, self.externs, buf) {
            return v;
        }
        // First-time misses fail the cache's tag filter and will not be
        // installed — skip the side-effect recording entirely for those.
        let install = cache.will_install();
        buf.clear();
        let verdict = if tracing {
            let rec = install.then(|| cache.record());
            let v = self.run(port, data, now_cycles, env, Some(buf), rec);
            buf.final_verdict(&v);
            v
        } else {
            let rec = install.then(|| cache.record());
            self.run(port, data, now_cycles, env, None, rec)
        };
        if install {
            let trace_bytes = if tracing { Some(buf.as_bytes()) } else { None };
            cache.commit(port, data, &verdict, trace_bytes);
        }
        verdict
    }

    /// Run one packet on the configured [`Engine`]. `rec` captures the
    /// replayable outcome on a flow-cache miss (compiled engine only —
    /// the reference engine never records, and never needs to: the cache
    /// is gated to [`Engine::Compiled`]).
    pub(crate) fn run(
        &mut self,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        env: &mut Env,
        trace: Option<&mut TraceBuf>,
        rec: Option<&mut crate::cache::MissRecord>,
    ) -> Verdict {
        match self.engine {
            Engine::Compiled => compile::exec(
                self.compiled,
                self.tables,
                self.table_stats,
                self.externs,
                env,
                port,
                data,
                now_cycles,
                trace,
                rec,
            ),
            Engine::Reference => self.run_reference(port, data, now_cycles, env, trace),
        }
    }

    /// The tree-walking reference engine: the executable specification
    /// the compiled engine is differentially validated against.
    fn run_reference(
        &mut self,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        env: &mut Env,
        mut trace: Option<&mut TraceBuf>,
    ) -> Verdict {
        let prog = self.program;
        env.reset(port, data.len(), now_cycles);

        // ---- Parse ----
        let payload_start = match parse_packet(prog, data, env, &mut trace) {
            Ok(offset) => offset,
            Err(reason) => return Verdict::Drop(reason),
        };
        // The unparsed payload stays a borrowed slice; the deparser copies
        // it straight into the output frame (no intermediate allocation).
        let payload = &data[payload_start..];

        // ---- Pipeline ----
        for (cid, control) in prog.controls.iter().enumerate() {
            if env.exited {
                break;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.control(cid as u32);
            }
            self.exec_block(&control.body, env, now_cycles, &mut trace, data.len());
        }

        // ---- Verdict + deparse ----
        if env.drop_flag {
            return Verdict::Drop(DropReason::ActionDrop);
        }
        if !env.egress_written {
            return Verdict::Drop(DropReason::NoEgress);
        }
        let out = self.deparse(env, payload, &mut trace);
        if env.egress_spec == FLOOD_PORT {
            Verdict::Flood { data: out }
        } else if env.egress_spec > FLOOD_PORT {
            Verdict::Drop(DropReason::BadEgress)
        } else {
            Verdict::Forward {
                port: env.egress_spec as u16,
                data: out,
            }
        }
    }

    fn deparse(&self, env: &Env, payload: &[u8], trace: &mut Option<&mut TraceBuf>) -> Vec<u8> {
        let prog = self.program;
        let mut out_bits = 0usize;
        for &hid in &prog.deparse {
            if env.headers[hid].valid {
                out_bits += prog.headers[hid].bit_width as usize;
            }
        }
        let mut out = vec![0u8; out_bits / 8 + payload.len()];
        let mut cursor = 0usize;
        for &hid in &prog.deparse {
            if !env.headers[hid].valid {
                continue;
            }
            let layout = &prog.headers[hid];
            if let Some(t) = trace.as_deref_mut() {
                t.emit(hid as u32);
            }
            for (f, value) in layout.fields.iter().zip(&env.headers[hid].fields) {
                write_bits(
                    &mut out,
                    cursor + f.offset_bits as usize,
                    f.width_bits as usize,
                    *value,
                );
            }
            cursor += layout.bit_width as usize;
        }
        out[cursor / 8..].copy_from_slice(payload);
        out
    }

    fn exec_block(
        &mut self,
        body: &[IrStmt],
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut TraceBuf>,
        pkt_len: usize,
    ) {
        for stmt in body {
            if env.exited {
                return;
            }
            match stmt {
                IrStmt::ApplyTable { table, hit_into } => {
                    self.apply_table(*table, *hit_into, env, now, trace, pkt_len);
                }
                IrStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    if eval(self.program, cond, env) != 0 {
                        self.exec_block(then_branch, env, now, trace, pkt_len);
                    } else {
                        self.exec_block(else_branch, env, now, trace, pkt_len);
                    }
                }
                IrStmt::Op(op) => self.exec_op(op, env, now, trace, pkt_len),
                IrStmt::Exit => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.exit();
                    }
                    env.exited = true;
                }
            }
        }
    }

    fn apply_table(
        &mut self,
        tid: usize,
        hit_into: Option<usize>,
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut TraceBuf>,
        pkt_len: usize,
    ) {
        let prog = self.program;
        let table = &prog.tables[tid];
        env.key_scratch.clear();
        for k in &table.keys {
            let v = eval(prog, &k.expr, env);
            env.key_scratch.push(v);
        }
        let (aid, hit) = match self.tables.lookup(tid, &env.key_scratch) {
            Some(entry) => {
                env.action_args.clear();
                env.action_args.extend_from_slice(&entry.action.args);
                (entry.action.action, true)
            }
            None => {
                let default = &table.default_action;
                env.action_args.clear();
                env.action_args.extend_from_slice(&default.args);
                (default.action, false)
            }
        };
        self.table_stats[tid].record(hit);
        if let Some(local) = hit_into {
            env.locals[local] = hit as u128;
        }
        let action = &prog.actions[aid];
        if let Some(t) = trace.as_deref_mut() {
            t.table(tid as u32, aid as u32, hit, &env.key_scratch);
        }
        for op in &action.ops {
            self.exec_op(op, env, now, trace, pkt_len);
        }
    }

    fn exec_op(
        &mut self,
        op: &Op,
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut TraceBuf>,
        pkt_len: usize,
    ) {
        let prog = self.program;
        match op {
            Op::Assign(lv, e) => {
                let v = eval(prog, e, env);
                assign(prog, lv, v, env);
            }
            Op::SetValid(hid, valid) => {
                env.headers[*hid].valid = *valid;
                if !*valid {
                    for f in &mut env.headers[*hid].fields {
                        *f = 0;
                    }
                }
            }
            Op::Drop => {
                if let Some(t) = trace.as_deref_mut() {
                    t.mark_drop();
                }
                env.drop_flag = true;
            }
            Op::CounterInc(id, idx) => {
                let i = eval(prog, idx, env) as usize;
                self.externs.counter_inc(*id, i, pkt_len);
            }
            Op::RegisterRead(lv, id, idx) => {
                let i = eval(prog, idx, env) as usize;
                let v = self.externs.register_read(*id, i);
                assign(prog, lv, v, env);
            }
            Op::RegisterWrite(id, idx, val) => {
                let i = eval(prog, idx, env) as usize;
                let v = eval(prog, val, env);
                self.externs.register_write(*id, i, v);
            }
            Op::MeterExecute(id, idx, lv) => {
                let i = eval(prog, idx, env) as usize;
                let colour = self.externs.meter_execute(*id, i, now);
                assign(prog, lv, colour, env);
            }
            Op::NoOp => {}
        }
    }
}

/// Run the parser FSM over `data`, filling `env`'s headers/metadata.
/// Returns the byte offset of the unparsed payload on accept, or the drop
/// reason on reject. `env` must have been [`Env::reset`] first. Trace
/// records carry raw state/header ids; names resolve lazily through the
/// compiled program's interned set when a trace is actually decoded, so
/// both engines' traces stay content-identical at zero per-event cost.
///
/// Pure with respect to tables, externs and statistics — which is why the
/// meter-partitioning pre-pass can replay it safely ahead of execution.
fn parse_packet(
    prog: &ir::Program,
    data: &[u8],
    env: &mut Env,
    trace: &mut Option<&mut TraceBuf>,
) -> Result<usize, DropReason> {
    let mut cursor_bits = 0usize;
    let total_bits = data.len() * 8;
    let mut state = 0usize;
    let mut visited = 0usize;
    loop {
        visited += 1;
        if visited > PARSER_STATE_BUDGET {
            if let Some(t) = trace.as_deref_mut() {
                t.reject();
            }
            return Err(DropReason::ParserReject);
        }
        let st = &prog.parser.states[state];
        if let Some(t) = trace.as_deref_mut() {
            t.state(state as u32);
        }
        for op in &st.ops {
            match op {
                ir::ParserOp::Extract(hid) => {
                    let layout = &prog.headers[*hid];
                    let width = layout.bit_width as usize;
                    if cursor_bits + width > total_bits {
                        if let Some(t) = trace.as_deref_mut() {
                            t.reject();
                        }
                        return Err(DropReason::PacketTooShort);
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.extract(*hid as u32, cursor_bits as u32);
                    }
                    let hv = &mut env.headers[*hid];
                    hv.valid = true;
                    for (slot, f) in hv.fields.iter_mut().zip(&layout.fields) {
                        *slot = read_bits(
                            data,
                            cursor_bits + f.offset_bits as usize,
                            f.width_bits as usize,
                        );
                    }
                    cursor_bits += width;
                }
                ir::ParserOp::Assign(lv, e) => {
                    let v = eval(prog, e, env);
                    assign(prog, lv, v, env);
                }
            }
        }
        let target = match &st.transition {
            IrTransition::Accept => TransTarget::Accept,
            IrTransition::Reject => TransTarget::Reject,
            IrTransition::Goto(s) => TransTarget::State(*s),
            IrTransition::Select {
                keys,
                arms,
                default,
            } => {
                env.key_scratch.clear();
                for k in keys {
                    let v = eval(prog, k, env);
                    env.key_scratch.push(v);
                }
                arms.iter()
                    .find(|arm| {
                        arm.patterns
                            .iter()
                            .zip(&env.key_scratch)
                            .all(|(p, k)| p.matches(*k))
                    })
                    .map(|arm| arm.target)
                    .unwrap_or(*default)
            }
        };
        match target {
            TransTarget::Accept => {
                if let Some(t) = trace.as_deref_mut() {
                    t.accept();
                }
                return Ok((cursor_bits / 8).min(data.len()));
            }
            TransTarget::Reject => {
                if let Some(t) = trace.as_deref_mut() {
                    t.reject();
                }
                return Err(DropReason::ParserReject);
            }
            TransTarget::State(s) => state = s,
        }
    }
}

fn assign(prog: &ir::Program, lv: &LValue, value: u128, env: &mut Env) {
    match lv {
        LValue::Field(h, f) => {
            let width = prog.headers[*h].fields[*f].width_bits;
            env.headers[*h].fields[*f] = truncate(value, width);
        }
        LValue::Meta(m) => {
            env.meta[*m] = truncate(value, prog.metadata[*m].width);
        }
        LValue::Std(s) => match s {
            ir::StdField::EgressSpec => {
                env.egress_spec = truncate(value, 9);
                env.egress_written = true;
                // v1model: a later egress write revives the packet.
                env.drop_flag = false;
            }
            ir::StdField::EgressPort | ir::StdField::IngressPort => {
                // Read-only from the data plane; writes ignored.
            }
            ir::StdField::PacketLength => env.packet_length = truncate(value, 32),
            ir::StdField::IngressTimestamp => env.ts_cycles = truncate(value, 48),
        },
        LValue::Local(l) => {
            env.locals[*l] = truncate(value, prog.locals[*l].width);
        }
        LValue::Slice(inner, hi, lo) => {
            let current = read_lvalue(inner, env);
            let slice_w = hi - lo + 1;
            let mask = ir::all_ones(slice_w) << lo;
            let new = (current & !mask) | ((truncate(value, slice_w)) << lo);
            assign(prog, inner, new, env);
        }
    }
}

fn read_lvalue(lv: &LValue, env: &Env) -> u128 {
    match lv {
        LValue::Field(h, f) => env.headers[*h].fields[*f],
        LValue::Meta(m) => env.meta[*m],
        LValue::Std(s) => match s {
            ir::StdField::IngressPort => env.ingress_port,
            ir::StdField::EgressSpec => env.egress_spec,
            ir::StdField::EgressPort => env.egress_spec,
            ir::StdField::PacketLength => env.packet_length,
            ir::StdField::IngressTimestamp => env.ts_cycles,
        },
        LValue::Local(l) => env.locals[*l],
        LValue::Slice(inner, hi, lo) => truncate(read_lvalue(inner, env) >> lo, hi - lo + 1),
    }
}

fn eval(prog: &ir::Program, e: &IrExpr, env: &Env) -> u128 {
    match e {
        IrExpr::Const { value, .. } => *value,
        IrExpr::Field(h, f) => {
            if env.headers[*h].valid {
                env.headers[*h].fields[*f]
            } else {
                // Reading an invalid header is undefined in P4; the
                // reference returns 0 deterministically.
                0
            }
        }
        IrExpr::Meta(m) => env.meta[*m],
        IrExpr::Std(s) => match s {
            ir::StdField::IngressPort => env.ingress_port,
            ir::StdField::EgressSpec => env.egress_spec,
            ir::StdField::EgressPort => env.egress_spec,
            ir::StdField::PacketLength => env.packet_length,
            ir::StdField::IngressTimestamp => env.ts_cycles,
        },
        IrExpr::Param { index, width } => {
            truncate(env.action_args.get(*index).copied().unwrap_or(0), *width)
        }
        IrExpr::Local(l) => env.locals[*l],
        IrExpr::IsValid(h) => env.headers[*h].valid as u128,
        IrExpr::Un { op, a, width } => {
            let v = eval(prog, a, env);
            match op {
                UnOp::Not => truncate(!v, *width),
                UnOp::Neg => truncate(v.wrapping_neg(), *width),
                UnOp::LNot => (v == 0) as u128,
            }
        }
        IrExpr::Bin { op, a, b, width } => {
            let x = eval(prog, a, env);
            let y = eval(prog, b, env);
            let w = *width;
            match op {
                BinOp::Add => truncate(x.wrapping_add(y), w),
                BinOp::Sub => truncate(x.wrapping_sub(y), w),
                BinOp::Mul => truncate(x.wrapping_mul(y), w),
                BinOp::Div => truncate(x.checked_div(y).unwrap_or(0), w),
                BinOp::Mod => truncate(x.checked_rem(y).unwrap_or(0), w),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => truncate(x.checked_shl(y as u32).unwrap_or(0), w),
                BinOp::Shr => x.checked_shr(y as u32).unwrap_or(0),
                BinOp::Eq => (x == y) as u128,
                BinOp::Ne => (x != y) as u128,
                BinOp::Lt => (x < y) as u128,
                BinOp::Le => (x <= y) as u128,
                BinOp::Gt => (x > y) as u128,
                BinOp::Ge => (x >= y) as u128,
                BinOp::LAnd => (x != 0 && y != 0) as u128,
                BinOp::LOr => (x != 0 || y != 0) as u128,
                BinOp::Concat => {
                    let bw = b.width(prog);
                    truncate((x << bw) | y, w)
                }
            }
        }
        IrExpr::Slice { base, hi, lo } => truncate(eval(prog, base, env) >> lo, hi - lo + 1),
        IrExpr::Cast { expr, width } => truncate(eval(prog, expr, env), *width),
    }
}
