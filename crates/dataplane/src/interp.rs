//! The reference interpreter: P4-16 semantics for the pipeline IR.
//!
//! [`Dataplane`] owns a compiled program plus its runtime state (tables,
//! registers, counters, meters) and processes one packet at a time:
//!
//! 1. **Parse**: run the FSM from `start`; `extract` consumes bytes and
//!    marks headers valid; a `reject` transition — or running out of bytes —
//!    **drops the packet**, as P4-16 requires (this is the exact semantics
//!    the paper's SDNet backend violated);
//! 2. **Pipeline**: execute each control in order: table applies, ifs and
//!    primitive ops, with v1model-style drop semantics (`mark_to_drop` sets
//!    a flag that a later `egress_spec` write clears);
//! 3. **Deparse**: emit valid headers in deparse order, append the unparsed
//!    payload.
//!
//! Egress conventions (documented device-model behaviour):
//! * `egress_spec` 0..510 — forward out of that port;
//! * `egress_spec` 511 — flood (all ports except ingress);
//! * no write to `egress_spec` — drop (`NoEgress`).

use crate::bits::{read_bits, write_bits};
use crate::externs::{ExternState, MeterConfig};
use crate::table::{lpm_pattern, RuntimeEntry, TableError, TableState};
use crate::trace::{DropReason, Trace, TraceEvent, Verdict};
use netdebug_p4::ast::{BinOp, UnOp};
use netdebug_p4::ir::{
    self, truncate, IrExpr, IrPattern, IrStmt, IrTransition, LValue, Op, TransTarget,
};

/// The flood "port" value in `egress_spec`.
pub const FLOOD_PORT: u128 = 511;

/// Maximum parser states visited per packet before declaring a loop.
const PARSER_STATE_BUDGET: usize = 256;

/// Errors from the control-plane API.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// No such table.
    NoSuchTable(String),
    /// No such action.
    NoSuchAction(String),
    /// No such extern instance.
    NoSuchExtern(String),
    /// Entry rejected.
    Table(TableError),
}

impl core::fmt::Display for ControlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ControlError::NoSuchTable(n) => write!(f, "no such table `{n}`"),
            ControlError::NoSuchAction(n) => write!(f, "no such action `{n}`"),
            ControlError::NoSuchExtern(n) => write!(f, "no such extern `{n}`"),
            ControlError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<TableError> for ControlError {
    fn from(e: TableError) -> Self {
        ControlError::Table(e)
    }
}

/// Runtime value of one header instance.
#[derive(Debug, Clone)]
struct HeaderVal {
    valid: bool,
    fields: Vec<u128>,
}

/// Per-packet execution environment.
struct Env {
    headers: Vec<HeaderVal>,
    meta: Vec<u128>,
    locals: Vec<u128>,
    ingress_port: u128,
    egress_spec: u128,
    egress_written: bool,
    packet_length: u128,
    ts_cycles: u128,
    drop_flag: bool,
    exited: bool,
    action_args: Vec<u128>,
}

/// A program plus its runtime state — one simulated data plane.
#[derive(Debug, Clone)]
pub struct Dataplane {
    program: ir::Program,
    tables: Vec<TableState>,
    externs: ExternState,
    packets_processed: u64,
}

impl Dataplane {
    /// Instantiate a data plane for a compiled program (const entries
    /// installed, externs zeroed).
    pub fn new(program: ir::Program) -> Self {
        let tables = program.tables.iter().map(TableState::new).collect();
        let externs = ExternState::new(&program.externs);
        Dataplane {
            program,
            tables,
            externs,
            packets_processed: 0,
        }
    }

    /// Instantiate with per-table capacity overrides (used by hardware
    /// backends that quantize or truncate table memories).
    pub fn with_table_capacities(program: ir::Program, capacities: &[u64]) -> Self {
        let tables = program
            .tables
            .iter()
            .zip(capacities)
            .map(|(t, cap)| TableState::with_capacity(t, *cap))
            .collect();
        let externs = ExternState::new(&program.externs);
        Dataplane {
            program,
            tables,
            externs,
            packets_processed: 0,
        }
    }

    /// The compiled program.
    pub fn program(&self) -> &ir::Program {
        &self.program
    }

    /// Packets processed since construction.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    // ------------------------------------------------------------------
    // Control-plane API
    // ------------------------------------------------------------------

    fn table_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .table_by_name(name)
            .ok_or_else(|| ControlError::NoSuchTable(name.to_string()))
    }

    fn action_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .action_by_name(name)
            .ok_or_else(|| ControlError::NoSuchAction(name.to_string()))
    }

    fn extern_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .extern_by_name(name)
            .ok_or_else(|| ControlError::NoSuchExtern(name.to_string()))
    }

    /// Install an arbitrary entry.
    pub fn install(
        &mut self,
        table: &str,
        patterns: Vec<IrPattern>,
        action: &str,
        args: Vec<u128>,
        priority: i32,
    ) -> Result<(), ControlError> {
        let tid = self.table_id(table)?;
        let aid = self.action_id(action)?;
        let entry = RuntimeEntry {
            patterns,
            action: ir::ActionCall {
                action: aid,
                args,
            },
            priority,
        };
        self.tables[tid]
            .install(&self.program.tables[tid], &self.program.actions, entry)?;
        Ok(())
    }

    /// Install an exact-match entry (one value per key).
    pub fn install_exact(
        &mut self,
        table: &str,
        keys: Vec<u128>,
        action: &str,
        args: Vec<u128>,
    ) -> Result<(), ControlError> {
        let patterns = keys.into_iter().map(IrPattern::Value).collect();
        self.install(table, patterns, action, args, 0)
    }

    /// Install an LPM entry on a single-key LPM table (priority = prefix
    /// length, so longest prefix wins).
    pub fn install_lpm(
        &mut self,
        table: &str,
        prefix: u128,
        prefix_len: u16,
        action: &str,
        args: Vec<u128>,
    ) -> Result<(), ControlError> {
        let tid = self.table_id(table)?;
        let width = self.program.tables[tid]
            .keys
            .first()
            .map(|k| k.width)
            .unwrap_or(32);
        let pattern = lpm_pattern(prefix, prefix_len, width);
        self.install(table, vec![pattern], action, args, i32::from(prefix_len))
    }

    /// Read a counter cell: (packets, bytes).
    pub fn counter(&self, name: &str, index: usize) -> Result<(u64, u64), ControlError> {
        Ok(self.externs.counter_read(self.extern_id(name)?, index))
    }

    /// Read a register cell.
    pub fn register(&self, name: &str, index: usize) -> Result<u128, ControlError> {
        Ok(self.externs.register_read(self.extern_id(name)?, index))
    }

    /// Write a register cell from the control plane.
    pub fn set_register(&mut self, name: &str, index: usize, value: u128) -> Result<(), ControlError> {
        let id = self.extern_id(name)?;
        self.externs.register_write(id, index, value);
        Ok(())
    }

    /// Configure a meter cell.
    pub fn configure_meter(
        &mut self,
        name: &str,
        index: usize,
        config: MeterConfig,
    ) -> Result<(), ControlError> {
        let id = self.extern_id(name)?;
        self.externs.meter_configure(id, index, config);
        Ok(())
    }

    /// Hit/miss/occupancy statistics for a table.
    pub fn table_stats(&self, name: &str) -> Result<(u64, u64, usize, u64), ControlError> {
        let tid = self.table_id(name)?;
        let t = &self.tables[tid];
        Ok((t.hits, t.misses, t.len(), t.capacity()))
    }

    /// Direct access to a table's runtime state (used by backends).
    pub fn table_state_mut(&mut self, index: usize) -> &mut TableState {
        &mut self.tables[index]
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    /// Process a packet arriving on `port` at device time `now_cycles`,
    /// recording a full trace.
    pub fn process(&mut self, port: u16, data: &[u8], now_cycles: u64) -> (Verdict, Trace) {
        let mut trace = Trace::default();
        let verdict = self.run(port, data, now_cycles, Some(&mut trace));
        trace.push(TraceEvent::Final {
            verdict: format!("{verdict:?}"),
        });
        (verdict, trace)
    }

    /// Process without tracing (fast path for throughput benchmarks).
    pub fn process_untraced(&mut self, port: u16, data: &[u8], now_cycles: u64) -> Verdict {
        self.run(port, data, now_cycles, None)
    }

    fn run(
        &mut self,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        mut trace: Option<&mut Trace>,
    ) -> Verdict {
        self.packets_processed += 1;
        let mut env = Env {
            headers: self
                .program
                .headers
                .iter()
                .map(|h| HeaderVal {
                    valid: false,
                    fields: vec![0; h.fields.len()],
                })
                .collect(),
            meta: vec![0; self.program.metadata.len()],
            locals: vec![0; self.program.locals.len()],
            ingress_port: u128::from(port),
            egress_spec: 0,
            egress_written: false,
            packet_length: data.len() as u128,
            ts_cycles: u128::from(now_cycles),
            drop_flag: false,
            exited: false,
            action_args: Vec::new(),
        };

        // ---- Parse ----
        let mut cursor_bits = 0usize;
        let total_bits = data.len() * 8;
        let mut state = 0usize;
        let mut visited = 0usize;
        loop {
            visited += 1;
            if visited > PARSER_STATE_BUDGET {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::ParserReject);
                }
                return Verdict::Drop(DropReason::ParserReject);
            }
            let st = &self.program.parser.states[state];
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::ParserState {
                    name: st.name.clone(),
                });
            }
            // Clone ops to avoid borrowing issues; parser states are small.
            let ops = st.ops.clone();
            let transition = st.transition.clone();
            for op in &ops {
                match op {
                    ir::ParserOp::Extract(hid) => {
                        let layout = &self.program.headers[*hid];
                        let width = layout.bit_width as usize;
                        if cursor_bits + width > total_bits {
                            if let Some(t) = trace.as_deref_mut() {
                                t.push(TraceEvent::ParserReject);
                            }
                            return Verdict::Drop(DropReason::PacketTooShort);
                        }
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(TraceEvent::Extract {
                                header: layout.name.clone(),
                                at_bit: cursor_bits,
                            });
                        }
                        let fields: Vec<u128> = layout
                            .fields
                            .iter()
                            .map(|f| {
                                read_bits(
                                    data,
                                    cursor_bits + f.offset_bits as usize,
                                    f.width_bits as usize,
                                )
                            })
                            .collect();
                        env.headers[*hid] = HeaderVal {
                            valid: true,
                            fields,
                        };
                        cursor_bits += width;
                    }
                    ir::ParserOp::Assign(lv, e) => {
                        let v = self.eval(e, &env, now_cycles);
                        self.assign(lv, v, &mut env);
                    }
                }
            }
            let target = match &transition {
                IrTransition::Accept => TransTarget::Accept,
                IrTransition::Reject => TransTarget::Reject,
                IrTransition::Goto(s) => TransTarget::State(*s),
                IrTransition::Select {
                    keys,
                    arms,
                    default,
                } => {
                    let key_vals: Vec<u128> =
                        keys.iter().map(|k| self.eval(k, &env, now_cycles)).collect();
                    arms.iter()
                        .find(|arm| {
                            arm.patterns
                                .iter()
                                .zip(&key_vals)
                                .all(|(p, k)| p.matches(*k))
                        })
                        .map(|arm| arm.target)
                        .unwrap_or(*default)
                }
            };
            match target {
                TransTarget::Accept => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::ParserAccept);
                    }
                    break;
                }
                TransTarget::Reject => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::ParserReject);
                    }
                    return Verdict::Drop(DropReason::ParserReject);
                }
                TransTarget::State(s) => state = s,
            }
        }
        let payload_start = cursor_bits / 8;
        let payload: Vec<u8> = data[payload_start.min(data.len())..].to_vec();

        // ---- Pipeline ----
        let controls = self.program.controls.clone();
        for control in &controls {
            if env.exited {
                break;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::ControlEnter {
                    name: control.name.clone(),
                });
            }
            self.exec_block(&control.body, &mut env, now_cycles, &mut trace, data.len());
        }

        // ---- Verdict + deparse ----
        if env.drop_flag {
            return Verdict::Drop(DropReason::ActionDrop);
        }
        if !env.egress_written {
            return Verdict::Drop(DropReason::NoEgress);
        }
        let out = self.deparse(&env, &payload, &mut trace);
        if env.egress_spec == FLOOD_PORT {
            Verdict::Flood { data: out }
        } else if env.egress_spec > FLOOD_PORT {
            Verdict::Drop(DropReason::BadEgress)
        } else {
            Verdict::Forward {
                port: env.egress_spec as u16,
                data: out,
            }
        }
    }

    fn deparse(&self, env: &Env, payload: &[u8], trace: &mut Option<&mut Trace>) -> Vec<u8> {
        let mut out_bits = 0usize;
        for &hid in &self.program.deparse {
            if env.headers[hid].valid {
                out_bits += self.program.headers[hid].bit_width as usize;
            }
        }
        let mut out = vec![0u8; out_bits / 8 + payload.len()];
        let mut cursor = 0usize;
        for &hid in &self.program.deparse {
            if !env.headers[hid].valid {
                continue;
            }
            let layout = &self.program.headers[hid];
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::Emit {
                    header: layout.name.clone(),
                });
            }
            for (f, value) in layout.fields.iter().zip(&env.headers[hid].fields) {
                write_bits(
                    &mut out,
                    cursor + f.offset_bits as usize,
                    f.width_bits as usize,
                    *value,
                );
            }
            cursor += layout.bit_width as usize;
        }
        out[cursor / 8..].copy_from_slice(payload);
        out
    }

    fn exec_block(
        &mut self,
        body: &[IrStmt],
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut Trace>,
        pkt_len: usize,
    ) {
        for stmt in body {
            if env.exited {
                return;
            }
            match stmt {
                IrStmt::ApplyTable { table, hit_into } => {
                    self.apply_table(*table, *hit_into, env, now, trace, pkt_len);
                }
                IrStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    if self.eval(cond, env, now) != 0 {
                        self.exec_block(then_branch, env, now, trace, pkt_len);
                    } else {
                        self.exec_block(else_branch, env, now, trace, pkt_len);
                    }
                }
                IrStmt::Op(op) => self.exec_op(op, env, now, trace, pkt_len),
                IrStmt::Exit => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::Exit);
                    }
                    env.exited = true;
                }
            }
        }
    }

    fn apply_table(
        &mut self,
        tid: usize,
        hit_into: Option<usize>,
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut Trace>,
        pkt_len: usize,
    ) {
        let keys: Vec<u128> = self.program.tables[tid]
            .keys
            .iter()
            .map(|k| k.expr.clone())
            .collect::<Vec<_>>()
            .iter()
            .map(|e| self.eval(e, env, now))
            .collect();
        let looked = self.tables[tid].lookup(&keys).cloned();
        let (call, hit) = match looked {
            Some(entry) => (entry.action, true),
            None => (self.program.tables[tid].default_action.clone(), false),
        };
        if let Some(local) = hit_into {
            env.locals[local] = hit as u128;
        }
        let action = self.program.actions[call.action].clone();
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::TableApply {
                table: self.program.tables[tid].name.clone(),
                keys,
                hit,
                action: action.name.clone(),
            });
        }
        let saved_args = std::mem::replace(&mut env.action_args, call.args.clone());
        for op in &action.ops {
            self.exec_op(op, env, now, trace, pkt_len);
        }
        env.action_args = saved_args;
    }

    fn exec_op(
        &mut self,
        op: &Op,
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut Trace>,
        pkt_len: usize,
    ) {
        match op {
            Op::Assign(lv, e) => {
                let v = self.eval(e, env, now);
                self.assign(lv, v, env);
            }
            Op::SetValid(hid, valid) => {
                env.headers[*hid].valid = *valid;
                if !*valid {
                    for f in &mut env.headers[*hid].fields {
                        *f = 0;
                    }
                }
            }
            Op::Drop => {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::MarkToDrop);
                }
                env.drop_flag = true;
            }
            Op::CounterInc(id, idx) => {
                let i = self.eval(idx, env, now) as usize;
                self.externs.counter_inc(*id, i, pkt_len);
            }
            Op::RegisterRead(lv, id, idx) => {
                let i = self.eval(idx, env, now) as usize;
                let v = self.externs.register_read(*id, i);
                self.assign(lv, v, env);
            }
            Op::RegisterWrite(id, idx, val) => {
                let i = self.eval(idx, env, now) as usize;
                let v = self.eval(val, env, now);
                self.externs.register_write(*id, i, v);
            }
            Op::MeterExecute(id, idx, lv) => {
                let i = self.eval(idx, env, now) as usize;
                let colour = self.externs.meter_execute(*id, i, now);
                self.assign(lv, colour, env);
            }
            Op::NoOp => {}
        }
    }

    fn assign(&self, lv: &LValue, value: u128, env: &mut Env) {
        match lv {
            LValue::Field(h, f) => {
                let width = self.program.headers[*h].fields[*f].width_bits;
                env.headers[*h].fields[*f] = truncate(value, width);
            }
            LValue::Meta(m) => {
                env.meta[*m] = truncate(value, self.program.metadata[*m].width);
            }
            LValue::Std(s) => match s {
                ir::StdField::EgressSpec => {
                    env.egress_spec = truncate(value, 9);
                    env.egress_written = true;
                    // v1model: a later egress write revives the packet.
                    env.drop_flag = false;
                }
                ir::StdField::EgressPort | ir::StdField::IngressPort => {
                    // Read-only from the data plane; writes ignored.
                }
                ir::StdField::PacketLength => env.packet_length = truncate(value, 32),
                ir::StdField::IngressTimestamp => env.ts_cycles = truncate(value, 48),
            },
            LValue::Local(l) => {
                env.locals[*l] = truncate(value, self.program.locals[*l].width);
            }
            LValue::Slice(inner, hi, lo) => {
                let current = self.read_lvalue(inner, env);
                let slice_w = hi - lo + 1;
                let mask = ir::all_ones(slice_w) << lo;
                let new = (current & !mask) | ((truncate(value, slice_w)) << lo);
                self.assign(inner, new, env);
            }
        }
    }

    fn read_lvalue(&self, lv: &LValue, env: &Env) -> u128 {
        match lv {
            LValue::Field(h, f) => env.headers[*h].fields[*f],
            LValue::Meta(m) => env.meta[*m],
            LValue::Std(s) => match s {
                ir::StdField::IngressPort => env.ingress_port,
                ir::StdField::EgressSpec => env.egress_spec,
                ir::StdField::EgressPort => env.egress_spec,
                ir::StdField::PacketLength => env.packet_length,
                ir::StdField::IngressTimestamp => env.ts_cycles,
            },
            LValue::Local(l) => env.locals[*l],
            LValue::Slice(inner, hi, lo) => {
                truncate(self.read_lvalue(inner, env) >> lo, hi - lo + 1)
            }
        }
    }

    fn eval(&self, e: &IrExpr, env: &Env, now: u64) -> u128 {
        let _ = now;
        match e {
            IrExpr::Const { value, .. } => *value,
            IrExpr::Field(h, f) => {
                if env.headers[*h].valid {
                    env.headers[*h].fields[*f]
                } else {
                    // Reading an invalid header is undefined in P4; the
                    // reference returns 0 deterministically.
                    0
                }
            }
            IrExpr::Meta(m) => env.meta[*m],
            IrExpr::Std(s) => match s {
                ir::StdField::IngressPort => env.ingress_port,
                ir::StdField::EgressSpec => env.egress_spec,
                ir::StdField::EgressPort => env.egress_spec,
                ir::StdField::PacketLength => env.packet_length,
                ir::StdField::IngressTimestamp => env.ts_cycles,
            },
            IrExpr::Param { index, width } => {
                truncate(env.action_args.get(*index).copied().unwrap_or(0), *width)
            }
            IrExpr::Local(l) => env.locals[*l],
            IrExpr::IsValid(h) => env.headers[*h].valid as u128,
            IrExpr::Un { op, a, width } => {
                let v = self.eval(a, env, now);
                match op {
                    UnOp::Not => truncate(!v, *width),
                    UnOp::Neg => truncate(v.wrapping_neg(), *width),
                    UnOp::LNot => (v == 0) as u128,
                }
            }
            IrExpr::Bin { op, a, b, width } => {
                let x = self.eval(a, env, now);
                let y = self.eval(b, env, now);
                let w = *width;
                match op {
                    BinOp::Add => truncate(x.wrapping_add(y), w),
                    BinOp::Sub => truncate(x.wrapping_sub(y), w),
                    BinOp::Mul => truncate(x.wrapping_mul(y), w),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            truncate(x / y, w)
                        }
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            0
                        } else {
                            truncate(x % y, w)
                        }
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => truncate(x.checked_shl(y as u32).unwrap_or(0), w),
                    BinOp::Shr => x.checked_shr(y as u32).unwrap_or(0),
                    BinOp::Eq => (x == y) as u128,
                    BinOp::Ne => (x != y) as u128,
                    BinOp::Lt => (x < y) as u128,
                    BinOp::Le => (x <= y) as u128,
                    BinOp::Gt => (x > y) as u128,
                    BinOp::Ge => (x >= y) as u128,
                    BinOp::LAnd => (x != 0 && y != 0) as u128,
                    BinOp::LOr => (x != 0 || y != 0) as u128,
                    BinOp::Concat => {
                        let bw = b.width(&self.program);
                        truncate((x << bw) | y, w)
                    }
                }
            }
            IrExpr::Slice { base, hi, lo } => {
                truncate(self.eval(base, env, now) >> lo, hi - lo + 1)
            }
            IrExpr::Cast { expr, width } => truncate(self.eval(expr, env, now), *width),
        }
    }
}
