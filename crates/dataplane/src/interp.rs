//! The reference interpreter: P4-16 semantics for the pipeline IR.
//!
//! [`Dataplane`] owns a compiled program plus its runtime state (tables,
//! registers, counters, meters) and processes packets either one at a time
//! ([`Dataplane::process`]) or in batches ([`Dataplane::process_batch`]):
//!
//! 1. **Parse**: run the FSM from `start`; `extract` consumes bytes and
//!    marks headers valid; a `reject` transition — or running out of bytes —
//!    **drops the packet**, as P4-16 requires (this is the exact semantics
//!    the paper's SDNet backend violated);
//! 2. **Pipeline**: execute each control in order: table applies, ifs and
//!    primitive ops, with v1model-style drop semantics (`mark_to_drop` sets
//!    a flag that a later `egress_spec` write clears);
//! 3. **Deparse**: emit valid headers in deparse order, append the unparsed
//!    payload.
//!
//! Execution is split into `ExecCtx`-style borrows internally: the
//! read-mostly state (program IR, table entry lists) is borrowed shared,
//! the per-shard mutable state (table statistics, extern cells) is
//! borrowed exclusively, so the hot path runs with **zero per-packet
//! clones** of parser ops, control bodies, table keys or action bodies,
//! and the unparsed payload is carried as a borrowed slice until the
//! deparser copies it into the output frame. The batch path reuses one
//! scratch `Env` across the whole batch, amortising per-packet setup;
//! tracing is opt-out there (see [`Dataplane::set_tracing`]) so throughput
//! runs skip event allocation entirely. The same read/write split is what
//! lets [`Dataplane::process_batch_parallel`] shard a batch across OS
//! threads (shared entries, per-shard stats merged commutatively on join)
//! and [`Dataplane::process_batch_with`] stream traces through a
//! [`TraceSink`] without materialising them.
//!
//! Egress conventions (documented device-model behaviour):
//! * `egress_spec` 0..510 — forward out of that port;
//! * `egress_spec` 511 — flood (all ports except ingress);
//! * no write to `egress_spec` — drop (`NoEgress`).

use crate::bits::{read_bits, write_bits};
use crate::externs::{ExternState, MeterConfig};
use crate::table::{lpm_pattern, RuntimeEntry, TableError, TableState, TableStats};
use crate::trace::{DropReason, Trace, TraceEvent, TraceSink, Verdict};
use netdebug_p4::ast::{BinOp, UnOp};
use netdebug_p4::ir::{
    self, truncate, IrExpr, IrPattern, IrStmt, IrTransition, LValue, Op, TransTarget,
};

/// The flood "port" value in `egress_spec`.
pub const FLOOD_PORT: u128 = 511;

/// Maximum parser states visited per packet before declaring a loop.
const PARSER_STATE_BUDGET: usize = 256;

/// Errors from the control-plane API.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// No such table.
    NoSuchTable(String),
    /// No such action.
    NoSuchAction(String),
    /// No such extern instance.
    NoSuchExtern(String),
    /// Entry rejected.
    Table(TableError),
}

impl core::fmt::Display for ControlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ControlError::NoSuchTable(n) => write!(f, "no such table `{n}`"),
            ControlError::NoSuchAction(n) => write!(f, "no such action `{n}`"),
            ControlError::NoSuchExtern(n) => write!(f, "no such extern `{n}`"),
            ControlError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<TableError> for ControlError {
    fn from(e: TableError) -> Self {
        ControlError::Table(e)
    }
}

/// Runtime value of one header instance.
#[derive(Debug, Clone)]
struct HeaderVal {
    valid: bool,
    fields: Vec<u128>,
}

/// Per-packet execution environment.
///
/// All vectors are sized once per program and reset (not reallocated)
/// between packets, so a batch touches the allocator only for output
/// frames and traces.
struct Env {
    headers: Vec<HeaderVal>,
    meta: Vec<u128>,
    locals: Vec<u128>,
    ingress_port: u128,
    egress_spec: u128,
    egress_written: bool,
    packet_length: u128,
    ts_cycles: u128,
    drop_flag: bool,
    exited: bool,
    /// Arguments of the action currently executing (reused buffer; table
    /// applies cannot nest inside actions, so a flat buffer suffices).
    action_args: Vec<u128>,
    /// Scratch for evaluated table/select keys (reused buffer).
    key_scratch: Vec<u128>,
}

impl Env {
    /// Allocate an environment shaped for `program`.
    fn new(program: &ir::Program) -> Self {
        Env {
            headers: program
                .headers
                .iter()
                .map(|h| HeaderVal {
                    valid: false,
                    fields: vec![0; h.fields.len()],
                })
                .collect(),
            meta: vec![0; program.metadata.len()],
            locals: vec![0; program.locals.len()],
            ingress_port: 0,
            egress_spec: 0,
            egress_written: false,
            packet_length: 0,
            ts_cycles: 0,
            drop_flag: false,
            exited: false,
            action_args: Vec::new(),
            key_scratch: Vec::new(),
        }
    }

    /// Reset for the next packet without releasing any allocation.
    fn reset(&mut self, port: u16, packet_len: usize, now_cycles: u64) {
        for h in &mut self.headers {
            h.valid = false;
            for f in &mut h.fields {
                *f = 0;
            }
        }
        for m in &mut self.meta {
            *m = 0;
        }
        for l in &mut self.locals {
            *l = 0;
        }
        self.ingress_port = u128::from(port);
        self.egress_spec = 0;
        self.egress_written = false;
        self.packet_length = packet_len as u128;
        self.ts_cycles = u128::from(now_cycles);
        self.drop_flag = false;
        self.exited = false;
        self.action_args.clear();
        self.key_scratch.clear();
    }
}

/// A program plus its runtime state — one simulated data plane.
///
/// The state is deliberately split along the read/write axis:
///
/// * **read-mostly** — the compiled program and the table entry lists
///   (`tables`); the packet path only reads them, the control plane only
///   writes them between batches. Parallel shards share these by
///   reference.
/// * **per-shard mutable** — table hit/miss statistics (`table_stats`) and
///   extern state (`externs`); counters merge commutatively on shard join,
///   registers/meters force the sequential fallback when written (see
///   [`Dataplane::process_batch_parallel`]).
#[derive(Debug, Clone)]
pub struct Dataplane {
    program: ir::Program,
    tables: Vec<TableState>,
    table_stats: Vec<TableStats>,
    externs: ExternState,
    packets_processed: u64,
    tracing: bool,
    /// Cached `Program::parallel_safe` — the program is immutable here.
    parallel_safe: bool,
}

/// Split borrows for the execution hot path: the immutable program and
/// table entries on one side, the mutable runtime state on the other.
/// Holding the program through a plain shared reference is what lets the
/// interpreter walk parser states, control bodies and action bodies
/// without cloning them per packet, and holding the table entry lists
/// through `&[TableState]` is what lets parallel shards share them while
/// each owns its own statistics and extern state.
struct ExecCtx<'p> {
    program: &'p ir::Program,
    tables: &'p [TableState],
    table_stats: &'p mut [TableStats],
    externs: &'p mut ExternState,
}

impl Dataplane {
    /// Instantiate a data plane for a compiled program (const entries
    /// installed, externs zeroed).
    pub fn new(program: ir::Program) -> Self {
        let tables = program.tables.iter().map(TableState::new).collect();
        Self::assemble(program, tables)
    }

    /// Instantiate with per-table capacity overrides (used by hardware
    /// backends that quantize or truncate table memories).
    pub fn with_table_capacities(program: ir::Program, capacities: &[u64]) -> Self {
        let tables = program
            .tables
            .iter()
            .zip(capacities)
            .map(|(t, cap)| TableState::with_capacity(t, *cap))
            .collect();
        Self::assemble(program, tables)
    }

    fn assemble(program: ir::Program, tables: Vec<TableState>) -> Self {
        let externs = ExternState::new(&program.externs);
        let table_stats = vec![TableStats::default(); program.tables.len()];
        let parallel_safe = program.parallel_safe();
        Dataplane {
            program,
            tables,
            table_stats,
            externs,
            packets_processed: 0,
            tracing: true,
            parallel_safe,
        }
    }

    /// Whether batches of this program may be sharded across threads with
    /// bit-identical results (no register writes, no meter executions).
    /// When false, [`Dataplane::process_batch_parallel`] silently takes the
    /// sequential path.
    pub fn parallel_safe(&self) -> bool {
        self.parallel_safe
    }

    /// The compiled program.
    pub fn program(&self) -> &ir::Program {
        &self.program
    }

    /// Packets processed since construction.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Whether [`Dataplane::process_batch`] records per-packet traces.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Turn batch-path tracing on or off.
    ///
    /// Tracing defaults to **on** (every packet gets a full [`Trace`], as
    /// the single-packet [`Dataplane::process`] always has). Turning it off
    /// is the fast path for throughput work: `process_batch` then returns
    /// `None` traces and allocates nothing per packet beyond the output
    /// frame.
    pub fn set_tracing(&mut self, tracing: bool) {
        self.tracing = tracing;
    }

    // ------------------------------------------------------------------
    // Control-plane API
    // ------------------------------------------------------------------

    fn table_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .table_by_name(name)
            .ok_or_else(|| ControlError::NoSuchTable(name.to_string()))
    }

    fn action_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .action_by_name(name)
            .ok_or_else(|| ControlError::NoSuchAction(name.to_string()))
    }

    fn extern_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .extern_by_name(name)
            .ok_or_else(|| ControlError::NoSuchExtern(name.to_string()))
    }

    /// Install an arbitrary entry.
    pub fn install(
        &mut self,
        table: &str,
        patterns: Vec<IrPattern>,
        action: &str,
        args: Vec<u128>,
        priority: i32,
    ) -> Result<(), ControlError> {
        let tid = self.table_id(table)?;
        let aid = self.action_id(action)?;
        let entry = RuntimeEntry {
            patterns,
            action: ir::ActionCall { action: aid, args },
            priority,
        };
        self.tables[tid].install(&self.program.tables[tid], &self.program.actions, entry)?;
        Ok(())
    }

    /// Install an exact-match entry (one value per key).
    pub fn install_exact(
        &mut self,
        table: &str,
        keys: Vec<u128>,
        action: &str,
        args: Vec<u128>,
    ) -> Result<(), ControlError> {
        let patterns = keys.into_iter().map(IrPattern::Value).collect();
        self.install(table, patterns, action, args, 0)
    }

    /// Install an LPM entry on a single-key LPM table (priority = prefix
    /// length, so longest prefix wins).
    pub fn install_lpm(
        &mut self,
        table: &str,
        prefix: u128,
        prefix_len: u16,
        action: &str,
        args: Vec<u128>,
    ) -> Result<(), ControlError> {
        let tid = self.table_id(table)?;
        let width = self.program.tables[tid]
            .keys
            .first()
            .map(|k| k.width)
            .unwrap_or(32);
        let pattern = lpm_pattern(prefix, prefix_len, width);
        self.install(table, vec![pattern], action, args, i32::from(prefix_len))
    }

    /// Read a counter cell: (packets, bytes).
    pub fn counter(&self, name: &str, index: usize) -> Result<(u64, u64), ControlError> {
        Ok(self.externs.counter_read(self.extern_id(name)?, index))
    }

    /// Read a register cell.
    pub fn register(&self, name: &str, index: usize) -> Result<u128, ControlError> {
        Ok(self.externs.register_read(self.extern_id(name)?, index))
    }

    /// Write a register cell from the control plane.
    pub fn set_register(
        &mut self,
        name: &str,
        index: usize,
        value: u128,
    ) -> Result<(), ControlError> {
        let id = self.extern_id(name)?;
        self.externs.register_write(id, index, value);
        Ok(())
    }

    /// Configure a meter cell.
    pub fn configure_meter(
        &mut self,
        name: &str,
        index: usize,
        config: MeterConfig,
    ) -> Result<(), ControlError> {
        let id = self.extern_id(name)?;
        self.externs.meter_configure(id, index, config);
        Ok(())
    }

    /// Hit/miss/occupancy statistics for a table.
    pub fn table_stats(&self, name: &str) -> Result<(u64, u64, usize, u64), ControlError> {
        let tid = self.table_id(name)?;
        let t = &self.tables[tid];
        let s = &self.table_stats[tid];
        Ok((s.hits, s.misses, t.len(), t.capacity()))
    }

    /// Direct access to a table's runtime state (used by backends).
    pub fn table_state_mut(&mut self, index: usize) -> &mut TableState {
        &mut self.tables[index]
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    /// Process a packet arriving on `port` at device time `now_cycles`,
    /// recording a full trace.
    pub fn process(&mut self, port: u16, data: &[u8], now_cycles: u64) -> (Verdict, Trace) {
        self.packets_processed += 1;
        let mut env = Env::new(&self.program);
        let mut ctx = ExecCtx {
            program: &self.program,
            tables: &self.tables,
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        let mut trace = Trace::default();
        let verdict = ctx.run_traced(port, data, now_cycles, &mut env, &mut trace);
        (verdict, trace)
    }

    /// Process without tracing (fast path for throughput benchmarks).
    pub fn process_untraced(&mut self, port: u16, data: &[u8], now_cycles: u64) -> Verdict {
        self.packets_processed += 1;
        let mut env = Env::new(&self.program);
        let mut ctx = ExecCtx {
            program: &self.program,
            tables: &self.tables,
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        ctx.run(port, data, now_cycles, &mut env, None)
    }

    /// Process a whole batch of `(ingress port, frame)` pairs arriving at
    /// device time `now_cycles`.
    ///
    /// Semantically identical to calling [`Dataplane::process`] once per
    /// packet in order (table/extern state threads through the batch), but
    /// the per-packet execution environment is allocated once and reused,
    /// and when tracing is disabled ([`Dataplane::set_tracing`]) no trace
    /// events are recorded at all. Each element of the result is the
    /// packet's verdict plus its trace (`None` when tracing is off).
    pub fn process_batch(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
    ) -> Vec<(Verdict, Option<Trace>)> {
        self.packets_processed += pkts.len() as u64;
        let tracing = self.tracing;
        let mut env = Env::new(&self.program);
        let mut ctx = ExecCtx {
            program: &self.program,
            tables: &self.tables,
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        pkts.iter()
            .map(|&(port, data)| {
                if tracing {
                    let mut trace = Trace::default();
                    let verdict = ctx.run_traced(port, data, now_cycles, &mut env, &mut trace);
                    (verdict, Some(trace))
                } else {
                    (ctx.run(port, data, now_cycles, &mut env, None), None)
                }
            })
            .collect()
    }

    /// Process a batch, streaming each packet's trace into `sink` instead
    /// of materialising it.
    ///
    /// One trace buffer is allocated for the whole batch and reused: the
    /// sink borrows it per packet (clone to keep). Verdicts come back in
    /// batch order. When tracing is disabled ([`Dataplane::set_tracing`])
    /// the sink still sees every packet, with an empty trace. Semantically
    /// identical to [`Dataplane::process_batch`] — this is the
    /// zero-allocation spine under traced device batching.
    pub fn process_batch_with(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        sink: &mut dyn TraceSink,
    ) -> Vec<Verdict> {
        self.packets_processed += pkts.len() as u64;
        let tracing = self.tracing;
        let mut env = Env::new(&self.program);
        let mut ctx = ExecCtx {
            program: &self.program,
            tables: &self.tables,
            table_stats: &mut self.table_stats,
            externs: &mut self.externs,
        };
        let mut trace = Trace::default();
        pkts.iter()
            .enumerate()
            .map(|(i, &(port, data))| {
                let verdict = if tracing {
                    ctx.run_traced(port, data, now_cycles, &mut env, &mut trace)
                } else {
                    trace.events.clear();
                    ctx.run(port, data, now_cycles, &mut env, None)
                };
                sink.observe(i, &verdict, &trace);
                verdict
            })
            .collect()
    }

    /// Process a batch sharded across `shards` OS threads.
    ///
    /// The batch is split into `shards` contiguous chunks; each worker
    /// shares the program and table entries read-only and owns its shard's
    /// mutable state — zeroed [`TableStats`] and an [`ExternState`] clone
    /// with zeroed counters ([`ExternState::shard_clone`]). On join the
    /// shard results are concatenated in shard order and the statistics
    /// merged commutatively (counter sums, hit/miss sums), so repeated
    /// runs produce identical state regardless of thread scheduling.
    ///
    /// Results are **bit-identical** to [`Dataplane::process_batch`]: when
    /// the program is not [`Dataplane::parallel_safe`] (it writes registers
    /// or executes meters — order-dependent state), or `shards <= 1`, or
    /// the batch is smaller than one packet per shard, this silently takes
    /// the sequential path instead.
    pub fn process_batch_parallel(
        &mut self,
        pkts: &[(u16, &[u8])],
        now_cycles: u64,
        shards: usize,
    ) -> Vec<(Verdict, Option<Trace>)> {
        if shards <= 1 || !self.parallel_safe || pkts.len() < shards {
            return self.process_batch(pkts, now_cycles);
        }
        self.packets_processed += pkts.len() as u64;
        let tracing = self.tracing;
        let program = &self.program;
        let tables = &self.tables[..];
        let chunk = pkts.len().div_ceil(shards);
        let base_externs = &self.externs;

        let shard_results: Vec<ShardResult> = std::thread::scope(|scope| {
            let workers: Vec<_> = pkts
                .chunks(chunk)
                .map(|chunk_pkts| {
                    scope.spawn(move || {
                        let mut stats = vec![TableStats::default(); tables.len()];
                        let mut externs = base_externs.shard_clone();
                        let mut ctx = ExecCtx {
                            program,
                            tables,
                            table_stats: &mut stats,
                            externs: &mut externs,
                        };
                        let mut env = Env::new(program);
                        let results = chunk_pkts
                            .iter()
                            .map(|&(port, data)| {
                                if tracing {
                                    let mut trace = Trace::default();
                                    let verdict = ctx
                                        .run_traced(port, data, now_cycles, &mut env, &mut trace);
                                    (verdict, Some(trace))
                                } else {
                                    (ctx.run(port, data, now_cycles, &mut env, None), None)
                                }
                            })
                            .collect();
                        ShardResult {
                            results,
                            stats,
                            externs,
                        }
                    })
                })
                .collect();
            // Join in spawn order: the merge below is deterministic by
            // construction (and the merged quantities are commutative
            // sums, so scheduling cannot perturb the outcome either way).
            workers
                .into_iter()
                .map(|w| w.join().expect("shard worker panicked"))
                .collect()
        });

        let mut out = Vec::with_capacity(pkts.len());
        for shard in shard_results {
            out.extend(shard.results);
            for (mine, theirs) in self.table_stats.iter_mut().zip(&shard.stats) {
                mine.absorb(theirs);
            }
            self.externs.absorb_counters(&shard.externs);
        }
        out
    }
}

/// What one parallel shard hands back on join.
struct ShardResult {
    results: Vec<(Verdict, Option<Trace>)>,
    stats: Vec<TableStats>,
    externs: ExternState,
}

impl ExecCtx<'_> {
    /// Run one packet with full tracing: clears `trace`, records every
    /// event and appends the final verdict summary. The single
    /// finalisation point shared by every traced path — single-packet,
    /// batch, streaming and parallel shards — which is what keeps their
    /// traces bit-identical (the equivalence the proptests pin down).
    fn run_traced(
        &mut self,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        env: &mut Env,
        trace: &mut Trace,
    ) -> Verdict {
        trace.events.clear();
        let verdict = self.run(port, data, now_cycles, env, Some(trace));
        trace.push(TraceEvent::Final {
            verdict: format!("{verdict:?}"),
        });
        verdict
    }

    fn run(
        &mut self,
        port: u16,
        data: &[u8],
        now_cycles: u64,
        env: &mut Env,
        mut trace: Option<&mut Trace>,
    ) -> Verdict {
        let prog = self.program;
        env.reset(port, data.len(), now_cycles);

        // ---- Parse ----
        let mut cursor_bits = 0usize;
        let total_bits = data.len() * 8;
        let mut state = 0usize;
        let mut visited = 0usize;
        loop {
            visited += 1;
            if visited > PARSER_STATE_BUDGET {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::ParserReject);
                }
                return Verdict::Drop(DropReason::ParserReject);
            }
            let st = &prog.parser.states[state];
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::ParserState {
                    name: st.name.clone(),
                });
            }
            for op in &st.ops {
                match op {
                    ir::ParserOp::Extract(hid) => {
                        let layout = &prog.headers[*hid];
                        let width = layout.bit_width as usize;
                        if cursor_bits + width > total_bits {
                            if let Some(t) = trace.as_deref_mut() {
                                t.push(TraceEvent::ParserReject);
                            }
                            return Verdict::Drop(DropReason::PacketTooShort);
                        }
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(TraceEvent::Extract {
                                header: layout.name.clone(),
                                at_bit: cursor_bits,
                            });
                        }
                        let hv = &mut env.headers[*hid];
                        hv.valid = true;
                        for (slot, f) in hv.fields.iter_mut().zip(&layout.fields) {
                            *slot = read_bits(
                                data,
                                cursor_bits + f.offset_bits as usize,
                                f.width_bits as usize,
                            );
                        }
                        cursor_bits += width;
                    }
                    ir::ParserOp::Assign(lv, e) => {
                        let v = eval(prog, e, env);
                        assign(prog, lv, v, env);
                    }
                }
            }
            let target = match &st.transition {
                IrTransition::Accept => TransTarget::Accept,
                IrTransition::Reject => TransTarget::Reject,
                IrTransition::Goto(s) => TransTarget::State(*s),
                IrTransition::Select {
                    keys,
                    arms,
                    default,
                } => {
                    env.key_scratch.clear();
                    for k in keys {
                        let v = eval(prog, k, env);
                        env.key_scratch.push(v);
                    }
                    arms.iter()
                        .find(|arm| {
                            arm.patterns
                                .iter()
                                .zip(&env.key_scratch)
                                .all(|(p, k)| p.matches(*k))
                        })
                        .map(|arm| arm.target)
                        .unwrap_or(*default)
                }
            };
            match target {
                TransTarget::Accept => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::ParserAccept);
                    }
                    break;
                }
                TransTarget::Reject => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::ParserReject);
                    }
                    return Verdict::Drop(DropReason::ParserReject);
                }
                TransTarget::State(s) => state = s,
            }
        }
        // The unparsed payload stays a borrowed slice; the deparser copies
        // it straight into the output frame (no intermediate allocation).
        let payload = &data[(cursor_bits / 8).min(data.len())..];

        // ---- Pipeline ----
        for control in &prog.controls {
            if env.exited {
                break;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::ControlEnter {
                    name: control.name.clone(),
                });
            }
            self.exec_block(&control.body, env, now_cycles, &mut trace, data.len());
        }

        // ---- Verdict + deparse ----
        if env.drop_flag {
            return Verdict::Drop(DropReason::ActionDrop);
        }
        if !env.egress_written {
            return Verdict::Drop(DropReason::NoEgress);
        }
        let out = self.deparse(env, payload, &mut trace);
        if env.egress_spec == FLOOD_PORT {
            Verdict::Flood { data: out }
        } else if env.egress_spec > FLOOD_PORT {
            Verdict::Drop(DropReason::BadEgress)
        } else {
            Verdict::Forward {
                port: env.egress_spec as u16,
                data: out,
            }
        }
    }

    fn deparse(&self, env: &Env, payload: &[u8], trace: &mut Option<&mut Trace>) -> Vec<u8> {
        let prog = self.program;
        let mut out_bits = 0usize;
        for &hid in &prog.deparse {
            if env.headers[hid].valid {
                out_bits += prog.headers[hid].bit_width as usize;
            }
        }
        let mut out = vec![0u8; out_bits / 8 + payload.len()];
        let mut cursor = 0usize;
        for &hid in &prog.deparse {
            if !env.headers[hid].valid {
                continue;
            }
            let layout = &prog.headers[hid];
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::Emit {
                    header: layout.name.clone(),
                });
            }
            for (f, value) in layout.fields.iter().zip(&env.headers[hid].fields) {
                write_bits(
                    &mut out,
                    cursor + f.offset_bits as usize,
                    f.width_bits as usize,
                    *value,
                );
            }
            cursor += layout.bit_width as usize;
        }
        out[cursor / 8..].copy_from_slice(payload);
        out
    }

    fn exec_block(
        &mut self,
        body: &[IrStmt],
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut Trace>,
        pkt_len: usize,
    ) {
        for stmt in body {
            if env.exited {
                return;
            }
            match stmt {
                IrStmt::ApplyTable { table, hit_into } => {
                    self.apply_table(*table, *hit_into, env, now, trace, pkt_len);
                }
                IrStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    if eval(self.program, cond, env) != 0 {
                        self.exec_block(then_branch, env, now, trace, pkt_len);
                    } else {
                        self.exec_block(else_branch, env, now, trace, pkt_len);
                    }
                }
                IrStmt::Op(op) => self.exec_op(op, env, now, trace, pkt_len),
                IrStmt::Exit => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::Exit);
                    }
                    env.exited = true;
                }
            }
        }
    }

    fn apply_table(
        &mut self,
        tid: usize,
        hit_into: Option<usize>,
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut Trace>,
        pkt_len: usize,
    ) {
        let prog = self.program;
        let table = &prog.tables[tid];
        env.key_scratch.clear();
        for k in &table.keys {
            let v = eval(prog, &k.expr, env);
            env.key_scratch.push(v);
        }
        let (aid, hit) = match self.tables[tid].lookup(&env.key_scratch) {
            Some(entry) => {
                env.action_args.clear();
                env.action_args.extend_from_slice(&entry.action.args);
                (entry.action.action, true)
            }
            None => {
                let default = &table.default_action;
                env.action_args.clear();
                env.action_args.extend_from_slice(&default.args);
                (default.action, false)
            }
        };
        self.table_stats[tid].record(hit);
        if let Some(local) = hit_into {
            env.locals[local] = hit as u128;
        }
        let action = &prog.actions[aid];
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::TableApply {
                table: table.name.clone(),
                keys: env.key_scratch.clone(),
                hit,
                action: action.name.clone(),
            });
        }
        for op in &action.ops {
            self.exec_op(op, env, now, trace, pkt_len);
        }
    }

    fn exec_op(
        &mut self,
        op: &Op,
        env: &mut Env,
        now: u64,
        trace: &mut Option<&mut Trace>,
        pkt_len: usize,
    ) {
        let prog = self.program;
        match op {
            Op::Assign(lv, e) => {
                let v = eval(prog, e, env);
                assign(prog, lv, v, env);
            }
            Op::SetValid(hid, valid) => {
                env.headers[*hid].valid = *valid;
                if !*valid {
                    for f in &mut env.headers[*hid].fields {
                        *f = 0;
                    }
                }
            }
            Op::Drop => {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::MarkToDrop);
                }
                env.drop_flag = true;
            }
            Op::CounterInc(id, idx) => {
                let i = eval(prog, idx, env) as usize;
                self.externs.counter_inc(*id, i, pkt_len);
            }
            Op::RegisterRead(lv, id, idx) => {
                let i = eval(prog, idx, env) as usize;
                let v = self.externs.register_read(*id, i);
                assign(prog, lv, v, env);
            }
            Op::RegisterWrite(id, idx, val) => {
                let i = eval(prog, idx, env) as usize;
                let v = eval(prog, val, env);
                self.externs.register_write(*id, i, v);
            }
            Op::MeterExecute(id, idx, lv) => {
                let i = eval(prog, idx, env) as usize;
                let colour = self.externs.meter_execute(*id, i, now);
                assign(prog, lv, colour, env);
            }
            Op::NoOp => {}
        }
    }
}

fn assign(prog: &ir::Program, lv: &LValue, value: u128, env: &mut Env) {
    match lv {
        LValue::Field(h, f) => {
            let width = prog.headers[*h].fields[*f].width_bits;
            env.headers[*h].fields[*f] = truncate(value, width);
        }
        LValue::Meta(m) => {
            env.meta[*m] = truncate(value, prog.metadata[*m].width);
        }
        LValue::Std(s) => match s {
            ir::StdField::EgressSpec => {
                env.egress_spec = truncate(value, 9);
                env.egress_written = true;
                // v1model: a later egress write revives the packet.
                env.drop_flag = false;
            }
            ir::StdField::EgressPort | ir::StdField::IngressPort => {
                // Read-only from the data plane; writes ignored.
            }
            ir::StdField::PacketLength => env.packet_length = truncate(value, 32),
            ir::StdField::IngressTimestamp => env.ts_cycles = truncate(value, 48),
        },
        LValue::Local(l) => {
            env.locals[*l] = truncate(value, prog.locals[*l].width);
        }
        LValue::Slice(inner, hi, lo) => {
            let current = read_lvalue(inner, env);
            let slice_w = hi - lo + 1;
            let mask = ir::all_ones(slice_w) << lo;
            let new = (current & !mask) | ((truncate(value, slice_w)) << lo);
            assign(prog, inner, new, env);
        }
    }
}

fn read_lvalue(lv: &LValue, env: &Env) -> u128 {
    match lv {
        LValue::Field(h, f) => env.headers[*h].fields[*f],
        LValue::Meta(m) => env.meta[*m],
        LValue::Std(s) => match s {
            ir::StdField::IngressPort => env.ingress_port,
            ir::StdField::EgressSpec => env.egress_spec,
            ir::StdField::EgressPort => env.egress_spec,
            ir::StdField::PacketLength => env.packet_length,
            ir::StdField::IngressTimestamp => env.ts_cycles,
        },
        LValue::Local(l) => env.locals[*l],
        LValue::Slice(inner, hi, lo) => truncate(read_lvalue(inner, env) >> lo, hi - lo + 1),
    }
}

fn eval(prog: &ir::Program, e: &IrExpr, env: &Env) -> u128 {
    match e {
        IrExpr::Const { value, .. } => *value,
        IrExpr::Field(h, f) => {
            if env.headers[*h].valid {
                env.headers[*h].fields[*f]
            } else {
                // Reading an invalid header is undefined in P4; the
                // reference returns 0 deterministically.
                0
            }
        }
        IrExpr::Meta(m) => env.meta[*m],
        IrExpr::Std(s) => match s {
            ir::StdField::IngressPort => env.ingress_port,
            ir::StdField::EgressSpec => env.egress_spec,
            ir::StdField::EgressPort => env.egress_spec,
            ir::StdField::PacketLength => env.packet_length,
            ir::StdField::IngressTimestamp => env.ts_cycles,
        },
        IrExpr::Param { index, width } => {
            truncate(env.action_args.get(*index).copied().unwrap_or(0), *width)
        }
        IrExpr::Local(l) => env.locals[*l],
        IrExpr::IsValid(h) => env.headers[*h].valid as u128,
        IrExpr::Un { op, a, width } => {
            let v = eval(prog, a, env);
            match op {
                UnOp::Not => truncate(!v, *width),
                UnOp::Neg => truncate(v.wrapping_neg(), *width),
                UnOp::LNot => (v == 0) as u128,
            }
        }
        IrExpr::Bin { op, a, b, width } => {
            let x = eval(prog, a, env);
            let y = eval(prog, b, env);
            let w = *width;
            match op {
                BinOp::Add => truncate(x.wrapping_add(y), w),
                BinOp::Sub => truncate(x.wrapping_sub(y), w),
                BinOp::Mul => truncate(x.wrapping_mul(y), w),
                BinOp::Div => truncate(x.checked_div(y).unwrap_or(0), w),
                BinOp::Mod => truncate(x.checked_rem(y).unwrap_or(0), w),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => truncate(x.checked_shl(y as u32).unwrap_or(0), w),
                BinOp::Shr => x.checked_shr(y as u32).unwrap_or(0),
                BinOp::Eq => (x == y) as u128,
                BinOp::Ne => (x != y) as u128,
                BinOp::Lt => (x < y) as u128,
                BinOp::Le => (x <= y) as u128,
                BinOp::Gt => (x > y) as u128,
                BinOp::Ge => (x >= y) as u128,
                BinOp::LAnd => (x != 0 && y != 0) as u128,
                BinOp::LOr => (x != 0 || y != 0) as u128,
                BinOp::Concat => {
                    let bw = b.width(prog);
                    truncate((x << bw) | y, w)
                }
            }
        }
        IrExpr::Slice { base, hi, lo } => truncate(eval(prog, base, env) >> lo, hi - lo + 1),
        IrExpr::Cast { expr, width } => truncate(eval(prog, expr, env), *width),
    }
}
