//! The epoch-keyed flow cache: a memoized fast path for repeated flows.
//!
//! Real traffic is heavily flow-repetitive — the validation streams the
//! fleet runtime replays doubly so — yet the engines re-parse, re-probe
//! every table and re-execute the full bytecode for every packet of a
//! flow. For programs the cacheability analysis admits
//! ([`netdebug_p4::ir::Program::cacheability`]), the entire execution is
//! a pure function of three inputs: the ingress port, the frame length,
//! and the frame bytes the parser can possibly consume (bounded by
//! [`netdebug_p4::ir::Program::parser_longest_path_bits`]) — *given* a
//! fixed table state. The crate-internal `FlowCache` memoizes on
//! exactly that key:
//!
//! * **Key** — `(port, len, frame[..key_cap])`, hashed with the same
//!   Fx hash the table indexes use, verified by full byte compare on
//!   probe. The parsed prefix determines the parse path, every table
//!   key, every action choice and the output header bytes; the length
//!   covers `standard_metadata.packet_length`; the payload beyond the
//!   prefix passes through untouched and is spliced in per packet.
//! * **Epoch** — entries are valid for exactly one pinned snapshot
//!   generation. A [`ControlPlane`](crate::ControlPlane) install bumps
//!   the shared generation; the next `FlowCache::sync_generation`
//!   observes the move and drops every entry. There is no explicit
//!   flush path — invalidation *is* the PR-3/PR-4 epoch machinery.
//! * **Outcome** — a miss runs the compiled bytecode normally while a
//!   `MissRecord` captures the replayable side effects: the per-apply
//!   hit/miss sequence (table statistics), the counter increments, the
//!   payload split point, plus the verdict and output header bytes
//!   derived from the returned [`Verdict`]. A hit replays those without
//!   entering the interpreter loop. Traced packets store the flat trace
//!   record bytes too, so `LazyTrace` consumers of a cached hit decode
//!   the identical event stream.
//!
//! Programs whose verdicts read meter/register state or the ingress
//! timestamp, and programs whose parser can loop (so no finite key
//! prefix bounds the parse), classify as `Uncacheable` and bypass the
//! cache entirely — mirroring how `ParallelClass` gates sharding. The
//! reference engine also always bypasses: it stays the unmemoized
//! oracle the parity property tests compare against.

use crate::externs::ExternState;
use crate::table::{FxHasher, TableStats};
use crate::trace::{DropReason, TraceBuf, Verdict};
use std::hash::Hasher;

/// Flow-cache observability counters ([`crate::Dataplane::cache_stats`]).
///
/// Hit/miss/invalidation counts are cumulative since construction;
/// occupancy and capacity are instantaneous. For a data plane that has
/// run sharded batches, the numbers aggregate the per-shard worker
/// caches on top of the sequential one (occupancy and capacity sum over
/// the caches seen in the most recent sharded batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Packets replayed from a cached outcome.
    pub hits: u64,
    /// Packets that ran the full engine (and recorded an outcome).
    pub misses: u64,
    /// Generation bumps that dropped a non-empty cache.
    pub invalidations: u64,
    /// Entries currently resident.
    pub occupancy: usize,
    /// Total slots.
    pub capacity: usize,
}

impl CacheStats {
    /// Counter deltas since `before` (occupancy/capacity stay absolute —
    /// they are instantaneous, not cumulative).
    pub(crate) fn delta_since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            invalidations: self.invalidations - before.invalidations,
            occupancy: self.occupancy,
            capacity: self.capacity,
        }
    }

    /// Fold another cache's numbers in: counters sum, occupancy and
    /// capacity sum too (the aggregate spans disjoint caches).
    pub(crate) fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.occupancy += other.occupancy;
        self.capacity += other.capacity;
    }
}

/// The replayable side effects one miss records while the engine runs.
///
/// Threaded as `Option<&mut MissRecord>` through the compiled engine's
/// dispatch loop; `None` (every non-caching path) costs one branch per
/// touch point.
#[derive(Debug, Default)]
pub(crate) struct MissRecord {
    /// `(table id, hit)` per apply, in execution order.
    pub(crate) applies: Vec<(u32, bool)>,
    /// `(counter id, cell index)` per increment, in execution order.
    pub(crate) counters: Vec<(u32, u64)>,
    /// Byte offset of the unparsed payload (set by parser accept).
    pub(crate) payload_start: usize,
}

impl MissRecord {
    fn clear(&mut self) {
        self.applies.clear();
        self.counters.clear();
        self.payload_start = 0;
    }
}

/// The verdict shape of a cached outcome (the frame bytes are
/// reconstructed per packet from the stored header plus the live
/// payload).
#[derive(Debug, Clone, Copy)]
enum OutcomeKind {
    Forward(u16),
    Flood,
    Drop(DropReason),
}

/// One memoized execution: everything needed to replay a packet with
/// this key without entering the interpreter loop.
#[derive(Debug, Default)]
struct Outcome {
    kind: Option<OutcomeKind>,
    /// Output bytes **before** the payload (the deparsed headers).
    header: Vec<u8>,
    /// Where the live packet's payload starts.
    payload_start: usize,
    /// `(table id, hit)` replays into the table statistics.
    applies: Vec<(u32, bool)>,
    /// `(counter id, cell index)` replays into the extern state.
    counters: Vec<(u32, u64)>,
    /// Flat trace record bytes (including the final-verdict record),
    /// present only when the entry was recorded on a traced path.
    trace: Option<Vec<u8>>,
}

/// One direct-mapped slot.
#[derive(Debug, Default)]
struct Entry {
    hash: u64,
    port: u16,
    len: u32,
    /// The keyed frame prefix (`frame[..key_cap]`), compared in full.
    key: Vec<u8>,
    outcome: Outcome,
}

/// Number of direct-mapped slots (power of two).
const SLOTS: usize = 4096;

/// A per-dataplane (and per-shard-worker) direct-mapped flow cache.
///
/// Collisions overwrite — repeated flows keep their slot hot, one-off
/// keys cycle through without evicting more than one entry each. Slot
/// buffers are reused on overwrite, so the steady state of both the
/// all-hit and the all-miss extreme allocates nothing per packet beyond
/// the output frame.
#[derive(Debug)]
pub(crate) struct FlowCache {
    slots: Vec<Option<Entry>>,
    /// Dense mirror of each resident entry's key hash (0 when empty).
    /// Misses are decided here — one word read in a 32 KiB array —
    /// without ever touching the ~10× larger [`Entry`] slab; only a
    /// mirror match pays the full probe. Hash collisions are resolved by
    /// the entry's own byte-exact key compare.
    entry_hash: Vec<u64>,
    /// Second-chance filter: the key hash of each slot's most recent
    /// miss. A full entry is installed only when a key misses twice, so
    /// one-off keys (the uniform-random worst case) cost one word write
    /// here instead of a full entry write — and cannot evict a hot
    /// resident entry on a slot collision.
    tags: Vec<u64>,
    /// Bytes of frame prefix that key an entry (covers the longest
    /// possible parse).
    key_cap: usize,
    /// Snapshot generation the resident entries are valid for.
    generation: u64,
    /// Reused miss-side recording buffers (see [`MissRecord`]).
    scratch: MissRecord,
    /// Key hash/slot of the last lookup, reused by [`FlowCache::commit`].
    last_hash: u64,
    last_slot: usize,
    /// Whether the last miss passed the tag filter (commit installs).
    install: bool,
    hits: u64,
    misses: u64,
    invalidations: u64,
    occupied: usize,
}

impl FlowCache {
    pub(crate) fn new(key_cap: usize) -> FlowCache {
        let mut slots = Vec::new();
        slots.resize_with(SLOTS, || None);
        FlowCache {
            slots,
            entry_hash: vec![0; SLOTS],
            tags: vec![0; SLOTS],
            key_cap,
            generation: 0,
            scratch: MissRecord::default(),
            last_hash: 0,
            last_slot: 0,
            install: false,
            hits: 0,
            misses: 0,
            invalidations: 0,
            occupied: 0,
        }
    }

    /// Bytes of frame prefix the key covers.
    pub(crate) fn key_cap(&self) -> usize {
        self.key_cap
    }

    /// Current counters and occupancy.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            occupancy: self.occupied,
            capacity: self.slots.len(),
        }
    }

    /// Align the cache with the pinned snapshot generation: if any table
    /// republished since the resident entries were recorded, drop them
    /// all. This is the *only* invalidation path — a generation compare,
    /// exactly like the packet paths' own re-pin check.
    pub(crate) fn sync_generation(&mut self, generation: u64) {
        if generation == self.generation {
            return;
        }
        if self.occupied > 0 {
            for slot in &mut self.slots {
                *slot = None;
            }
            self.occupied = 0;
            self.invalidations += 1;
            self.entry_hash.fill(0);
        }
        self.tags.fill(0);
        self.generation = generation;
    }

    #[inline]
    fn key_of<'d>(&self, data: &'d [u8]) -> &'d [u8] {
        &data[..self.key_cap.min(data.len())]
    }

    #[inline]
    fn hash_key(port: u16, len: usize, key: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64((u64::from(port) << 48) ^ len as u64);
        h.write(key);
        h.finish()
    }

    /// Probe for `(port, frame)`. A hit replays the memoized outcome
    /// into the mutable runtime state and returns the verdict; `None` is
    /// a miss (the caller runs the engine with `self.scratch` recording
    /// and then calls [`FlowCache::commit`]). A traced lookup of an
    /// entry recorded untraced is a miss — the re-run re-records the
    /// entry with its trace bytes, so tracing consumers never observe a
    /// degraded event stream.
    pub(crate) fn lookup(
        &mut self,
        port: u16,
        data: &[u8],
        tracing: bool,
        table_stats: &mut [TableStats],
        externs: &mut ExternState,
        buf: &mut TraceBuf,
    ) -> Option<Verdict> {
        let key = self.key_of(data);
        let hash = Self::hash_key(port, data.len(), key);
        let slot = (hash as usize) & (self.slots.len() - 1);
        self.last_hash = hash;
        self.last_slot = slot;
        // 0 = no resident entry for this key, 1 = key resident but
        // recorded untraced (re-record with trace), 2 = hit. The mirror
        // check keeps the all-miss path out of the entry slab entirely.
        let matched = if self.entry_hash[slot] != hash {
            0
        } else {
            match self.slots[slot].as_ref() {
                Some(e)
                    if e.hash == hash
                        && e.port == port
                        && e.len as usize == data.len()
                        && e.key.as_slice() == key =>
                {
                    if !tracing || e.outcome.trace.is_some() {
                        2
                    } else {
                        1
                    }
                }
                _ => 0,
            }
        };
        if matched != 2 {
            self.misses += 1;
            self.install = matched == 1 || self.tags[slot] == hash;
            self.tags[slot] = hash;
            self.scratch.clear();
            return None;
        }
        self.hits += 1;
        let outcome = &self.slots[slot].as_ref().expect("probed entry").outcome;
        for &(tid, was_hit) in &outcome.applies {
            table_stats[tid as usize].record(was_hit);
        }
        for &(id, idx) in &outcome.counters {
            externs.counter_inc(id as usize, idx as usize, data.len());
        }
        if tracing {
            buf.load(outcome.trace.as_deref().expect("traced entry"));
        } else {
            buf.clear();
        }
        let rebuild = |header: &[u8], payload_start: usize| {
            let payload = &data[payload_start..];
            let mut out = Vec::with_capacity(header.len() + payload.len());
            out.extend_from_slice(header);
            out.extend_from_slice(payload);
            out
        };
        Some(match outcome.kind.expect("committed entry has a verdict") {
            OutcomeKind::Drop(reason) => Verdict::Drop(reason),
            OutcomeKind::Forward(p) => Verdict::Forward {
                port: p,
                data: rebuild(&outcome.header, outcome.payload_start),
            },
            OutcomeKind::Flood => Verdict::Flood {
                data: rebuild(&outcome.header, outcome.payload_start),
            },
        })
    }

    /// The recording buffers for the engine run that follows a miss.
    pub(crate) fn record(&mut self) -> &mut MissRecord {
        &mut self.scratch
    }

    /// Whether the miss the last [`FlowCache::lookup`] reported passed
    /// the tag filter, i.e. [`FlowCache::commit`] will install an entry
    /// (callers may skip recording otherwise).
    pub(crate) fn will_install(&self) -> bool {
        self.install
    }

    /// Memoize the outcome of the engine run a miss triggered; must
    /// directly follow the [`FlowCache::lookup`] that missed (the key
    /// hash and slot are carried over). First-time misses are filtered
    /// to a tag write in `lookup` and return without installing; a key's
    /// second miss overwrites the slot (direct-mapped), reusing its
    /// buffers. `trace` carries the packet's flat trace record bytes
    /// when the run was traced.
    pub(crate) fn commit(
        &mut self,
        port: u16,
        data: &[u8],
        verdict: &Verdict,
        trace: Option<&[u8]>,
    ) {
        if !self.install {
            return;
        }
        let key = self.key_of(data);
        let hash = self.last_hash;
        let slot = self.last_slot;
        self.entry_hash[slot] = hash;
        if self.slots[slot].is_none() {
            self.slots[slot] = Some(Entry::default());
            self.occupied += 1;
        }
        let e = self.slots[slot].as_mut().expect("just ensured");
        e.hash = hash;
        e.port = port;
        e.len = data.len() as u32;
        e.key.clear();
        e.key.extend_from_slice(key);
        let rec = &mut self.scratch;
        let out = &mut e.outcome;
        out.payload_start = rec.payload_start;
        out.applies.clear();
        out.applies.extend_from_slice(&rec.applies);
        out.counters.clear();
        out.counters.extend_from_slice(&rec.counters);
        out.header.clear();
        out.kind = Some(match verdict {
            Verdict::Drop(reason) => OutcomeKind::Drop(*reason),
            Verdict::Forward { port, data: frame } => {
                let payload_len = data.len() - rec.payload_start;
                out.header
                    .extend_from_slice(&frame[..frame.len() - payload_len]);
                OutcomeKind::Forward(*port)
            }
            Verdict::Flood { data: frame } => {
                let payload_len = data.len() - rec.payload_start;
                out.header
                    .extend_from_slice(&frame[..frame.len() - payload_len]);
                OutcomeKind::Flood
            }
        });
        match (trace, &mut out.trace) {
            (Some(bytes), Some(stored)) => {
                stored.clear();
                stored.extend_from_slice(bytes);
            }
            (Some(bytes), stored @ None) => *stored = Some(bytes.to_vec()),
            (None, stored) => *stored = None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_sync_drops_entries_once() {
        let mut c = FlowCache::new(14);
        c.sync_generation(1);
        assert_eq!(c.stats().invalidations, 0, "empty cache: nothing dropped");
        // Fake an occupied slot through the public surface: a miss + commit.
        let mut stats: Vec<TableStats> = vec![];
        let mut ext = ExternState::new(&[]);
        let mut buf = TraceBuf::default();
        let frame = [0u8; 32];
        // First miss only arms the tag filter; the second installs.
        for _ in 0..2 {
            assert!(c
                .lookup(0, &frame, false, &mut stats, &mut ext, &mut buf)
                .is_none());
            c.commit(0, &frame, &Verdict::Drop(DropReason::NoEgress), None);
        }
        assert_eq!(c.stats().occupancy, 1);
        c.sync_generation(2);
        assert_eq!(c.stats().occupancy, 0);
        assert_eq!(c.stats().invalidations, 1);
        // Same generation again: no further invalidation.
        c.sync_generation(2);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn hit_replays_verdict_with_live_payload() {
        let mut c = FlowCache::new(4);
        let mut stats: Vec<TableStats> = vec![TableStats::default()];
        let mut ext = ExternState::new(&[]);
        let mut buf = TraceBuf::default();
        let a = [1u8, 2, 3, 4, 0xAA, 0xBB];
        for _ in 0..2 {
            assert!(c
                .lookup(7, &a, false, &mut stats, &mut ext, &mut buf)
                .is_none());
            c.record().payload_start = 4;
            c.record().applies.push((0, true));
            c.commit(
                7,
                &a,
                &Verdict::Forward {
                    port: 3,
                    data: vec![9, 9, 0xAA, 0xBB],
                },
                None,
            );
        }
        // Same key, different payload: the hit splices the live bytes.
        let b = [1u8, 2, 3, 4, 0xCC, 0xDD];
        let v = c
            .lookup(7, &b, false, &mut stats, &mut ext, &mut buf)
            .expect("hit");
        assert_eq!(
            v,
            Verdict::Forward {
                port: 3,
                data: vec![9, 9, 0xCC, 0xDD],
            }
        );
        assert_eq!(stats[0].hits, 1, "apply replayed into table stats");
        assert_eq!(c.stats().hits, 1);
        // Different port or length: miss.
        assert!(c
            .lookup(8, &b, false, &mut stats, &mut ext, &mut buf)
            .is_none());
        assert!(c
            .lookup(7, &b[..5], false, &mut stats, &mut ext, &mut buf)
            .is_none());
    }

    #[test]
    fn traced_lookup_of_untraced_entry_misses() {
        let mut c = FlowCache::new(2);
        let mut stats: Vec<TableStats> = vec![];
        let mut ext = ExternState::new(&[]);
        let mut buf = TraceBuf::default();
        let frame = [5u8, 6, 7];
        for _ in 0..2 {
            assert!(c
                .lookup(0, &frame, false, &mut stats, &mut ext, &mut buf)
                .is_none());
            c.commit(0, &frame, &Verdict::Drop(DropReason::NoEgress), None);
        }
        // Untraced hit works…
        assert!(c
            .lookup(0, &frame, false, &mut stats, &mut ext, &mut buf)
            .is_some());
        // …but a traced probe must re-run to capture the event stream.
        assert!(c
            .lookup(0, &frame, true, &mut stats, &mut ext, &mut buf)
            .is_none());
        c.commit(
            0,
            &frame,
            &Verdict::Drop(DropReason::NoEgress),
            Some(&[1, 2, 3, 4]),
        );
        assert!(c
            .lookup(0, &frame, true, &mut stats, &mut ext, &mut buf)
            .is_some());
    }

    #[test]
    fn one_off_keys_never_evict_a_resident_entry() {
        let mut c = FlowCache::new(1);
        let mut stats: Vec<TableStats> = vec![];
        let mut ext = ExternState::new(&[]);
        let mut buf = TraceBuf::default();
        let hot = [0xA0u8, 0, 0];
        for _ in 0..2 {
            assert!(c
                .lookup(0, &hot, false, &mut stats, &mut ext, &mut buf)
                .is_none());
            c.commit(0, &hot, &Verdict::Drop(DropReason::NoEgress), None);
        }
        assert_eq!(c.stats().occupancy, 1);
        // A stream of one-off keys: each misses once, arms (and re-arms)
        // tags, but never passes the filter — occupancy stays put and the
        // hot key keeps hitting even if a one-off collides with its slot.
        for b in 0u8..32 {
            let frame = [b, 1, 2];
            assert!(c
                .lookup(0, &frame, false, &mut stats, &mut ext, &mut buf)
                .is_none());
            assert!(!c.will_install());
            c.commit(0, &frame, &Verdict::Drop(DropReason::NoEgress), None);
        }
        assert_eq!(c.stats().occupancy, 1);
        assert!(c
            .lookup(0, &hot, false, &mut stats, &mut ext, &mut buf)
            .is_some());
    }
}
