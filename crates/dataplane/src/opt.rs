//! Peephole optimization passes over the flat bytecode.
//!
//! `optimize` runs a pipeline of independent, individually toggleable
//! ([`PassConfig`]) rewrites over a [`CompiledProgram`]'s instruction
//! array:
//!
//! * **dead-store elimination** — `StoreLocal`/`StoreMeta` into slots no
//!   opcode ever loads become `Pop`; table-apply hit-capture locals that
//!   are never read are dropped. Locals and user metadata are zeroed
//!   per packet and invisible to verdicts, traces, statistics and
//!   externs, so eliding an unread store is unobservable.
//! * **constant folding** — expressions resolvable at compile time
//!   (`Const;Const;Bin`, `Const;Un`, `Const;Slice`, `Const;Cast`,
//!   constant concats) collapse into one `Const`, and a pure push
//!   followed by `Pop` (a write to a read-only standard field)
//!   disappears.
//! * **superinstruction fusion** — the hot adjacent pairs dispatch as
//!   one opcode: `Bin;BranchIfZero` → [`OpCode::CmpBranch`],
//!   `Const;Bin` → [`OpCode::ConstBin`] (and then
//!   `ConstBin;BranchIfZero` → [`OpCode::ConstCmpBranch`]), and the
//!   l2_switch-profile pair `LoadField;Apply` (single-key table) →
//!   [`OpCode::FieldApply`].
//! * **jump threading** — jumps to jumps (and branch/select/action
//!   entries targeting jumps) retarget to the final destination; a jump
//!   to the next instruction vanishes, a branch to the next instruction
//!   becomes the `Pop` it is.
//!
//! Every pass matches **strictly adjacent** instructions and only
//! rewrites a window when no interior instruction is a jump target (the
//! target set includes select arms, action entry points and the implicit
//! return address after every table apply), then the code is compacted —
//! `Nop`s removed and every target remapped — so the next pass sees
//! adjacency restored. The pipeline loops to a fixpoint; soundness is
//! pinned by the parity property tests, which compare verdicts, traces,
//! statistics and extern state against the tree-walking reference oracle
//! under every pass combination.

use crate::compile::{bin_op, CompiledProgram, OpCode, NO_HIT_LOCAL};
use netdebug_p4::ast::UnOp;
use netdebug_p4::ir::truncate;
use std::collections::HashSet;

/// Which optimization passes `optimize` runs. Every field defaults to
/// **on**; construct with struct-update syntax to toggle passes
/// individually:
///
/// ```
/// use netdebug_dataplane::PassConfig;
/// let no_fusion = PassConfig { fuse: false, ..PassConfig::default() };
/// let only_fold = PassConfig { const_fold: true, ..PassConfig::none() };
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Constant folding (incl. pure-push/`Pop` elimination).
    pub const_fold: bool,
    /// Dead-store elimination for never-read locals and metadata.
    pub dead_store: bool,
    /// Superinstruction fusion.
    pub fuse: bool,
    /// Jump threading.
    pub jump_thread: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            const_fold: true,
            dead_store: true,
            fuse: true,
            jump_thread: true,
        }
    }
}

impl PassConfig {
    /// All passes disabled: the raw lowering, unchanged.
    pub fn none() -> Self {
        PassConfig {
            const_fold: false,
            dead_store: false,
            fuse: false,
            jump_thread: false,
        }
    }

    /// All 16 pass combinations, in a fixed order ([`PassConfig::none`]
    /// first, all-on last) — the autotuner's search space.
    pub fn all_combinations() -> [PassConfig; 16] {
        let mut out = [PassConfig::none(); 16];
        for (bits, cfg) in out.iter_mut().enumerate() {
            cfg.const_fold = bits & 1 != 0;
            cfg.dead_store = bits & 2 != 0;
            cfg.fuse = bits & 4 != 0;
            cfg.jump_thread = bits & 8 != 0;
        }
        out
    }
}

impl core::fmt::Display for PassConfig {
    /// Enabled passes joined with `+` (`"none"` when all are off), e.g.
    /// `const_fold+fuse`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let enabled = [
            (self.const_fold, "const_fold"),
            (self.dead_store, "dead_store"),
            (self.fuse, "fuse"),
            (self.jump_thread, "jump_thread"),
        ];
        let mut any = false;
        for (on, name) in enabled {
            if on {
                if any {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// Micro-benchmark every [`PassConfig`] combination on `sample` (a small
/// `(port, frame)` batch shaped like the expected traffic) and return
/// the fastest. Each configuration compiles the program once and times
/// several untraced passes over the whole sample against fresh runtime
/// state (zeroed externs/statistics, const entries only), taking the
/// best-of-reps wall time; ties keep the earlier configuration in
/// [`PassConfig::all_combinations`] order, so results are deterministic
/// for a deterministic timer. An empty sample skips the search and
/// returns [`PassConfig::default`]. This is a seed of Parasol-style
/// per-program tuning: the engine's own knobs, chosen by measurement
/// rather than by hand.
pub fn autotune(program: &netdebug_p4::ir::Program, sample: &[(u16, Vec<u8>)]) -> PassConfig {
    use crate::externs::ExternState;
    use crate::interp::{Env, TablesRef};
    use crate::table::{TableState, TableStats};

    if sample.is_empty() {
        return PassConfig::default();
    }
    const REPS: usize = 5;
    let tables: Vec<TableState> = program.tables.iter().map(TableState::new).collect();
    let snapshots: Vec<_> = tables.iter().map(|t| t.snapshot()).collect();
    let mut env = Env::new(program);
    let mut best = (PassConfig::default(), std::time::Duration::MAX);
    for passes in PassConfig::all_combinations() {
        let cp = CompiledProgram::compile_with(program, passes);
        let mut stats = vec![TableStats::default(); program.tables.len()];
        let mut externs = ExternState::new(&program.externs);
        let mut elapsed = std::time::Duration::MAX;
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            for &(port, ref frame) in sample {
                let _ = crate::compile::exec(
                    &cp,
                    TablesRef::Pinned(&snapshots),
                    &mut stats,
                    &mut externs,
                    &mut env,
                    port,
                    frame,
                    0,
                    None,
                    None,
                );
            }
            elapsed = elapsed.min(start.elapsed());
        }
        if elapsed < best.1 {
            best = (passes, elapsed);
        }
    }
    best.0
}

/// Pipeline iteration cap: folding/fusion cascades (each iteration can
/// expose the next window) converge far earlier in practice; the cap
/// only bounds pathological hand-written chains.
const MAX_PIPELINE_ITERS: usize = 16;

/// Run the enabled passes over `cp` to a fixpoint.
pub(crate) fn optimize(cp: &mut CompiledProgram, passes: PassConfig) {
    if passes == PassConfig::none() {
        return;
    }
    for _ in 0..MAX_PIPELINE_ITERS {
        let mut changed = false;
        if passes.dead_store {
            changed |= dead_store(cp);
        }
        if passes.const_fold {
            changed |= const_fold(cp);
        }
        if passes.fuse {
            changed |= fuse(cp);
        }
        if passes.jump_thread {
            changed |= jump_thread(cp);
        }
        if !changed {
            break;
        }
    }
}

/// Mark every pc some control transfer can land on: explicit jump/branch
/// targets, select arms and defaults, action entry points, the implicit
/// return address after each table apply, and the program entry. A
/// rewrite window may *start* at a target (the replacement instruction is
/// written there) but must not *swallow* one.
fn jump_targets(cp: &CompiledProgram) -> Vec<bool> {
    let len = cp.code.len();
    let mut t = vec![false; len];
    if len > 0 {
        t[0] = true;
    }
    for (pc, op) in cp.code.iter().enumerate() {
        match *op {
            OpCode::Jump(x)
            | OpCode::BranchIfZero(x)
            | OpCode::Exit(x)
            | OpCode::CmpBranch(_, _, x)
            | OpCode::ConstCmpBranch(_, _, _, x) => t[x as usize] = true,
            OpCode::Apply { .. } | OpCode::FieldApply { .. } if pc + 1 < len => {
                t[pc + 1] = true;
            }
            _ => {}
        }
    }
    for sel in &cp.selects {
        t[sel.default as usize] = true;
        for &(_, arm) in &sel.arms {
            t[arm as usize] = true;
        }
    }
    for &a in &cp.action_pcs {
        t[a as usize] = true;
    }
    t
}

/// Remove `Nop`s and remap every stored pc (jump operands, select arms
/// and defaults, action entries) onto the compacted indices. A target
/// that pointed *at* a removed `Nop` lands on the first following real
/// instruction — exactly where falling through the `Nop` would have led.
fn compact(cp: &mut CompiledProgram) {
    let len = cp.code.len();
    let mut new_index = vec![0u32; len + 1];
    let mut kept = 0u32;
    for (i, op) in cp.code.iter().enumerate() {
        new_index[i] = kept;
        if !matches!(op, OpCode::Nop) {
            kept += 1;
        }
    }
    new_index[len] = kept;
    if kept as usize == len {
        return;
    }
    cp.code.retain(|op| !matches!(op, OpCode::Nop));
    let map = |t: &mut u32| {
        let n = new_index[*t as usize];
        debug_assert!(n < kept, "target {t} maps past the end");
        *t = n;
    };
    for op in cp.code.iter_mut() {
        match op {
            OpCode::Jump(t)
            | OpCode::BranchIfZero(t)
            | OpCode::Exit(t)
            | OpCode::CmpBranch(_, _, t)
            | OpCode::ConstCmpBranch(_, _, _, t) => map(t),
            _ => {}
        }
    }
    for sel in &mut cp.selects {
        map(&mut sel.default);
        for arm in &mut sel.arms {
            map(&mut arm.1);
        }
    }
    for a in &mut cp.action_pcs {
        map(a);
    }
}

/// A push with no side effects, cancellable against an immediate `Pop`.
fn is_pure_push(op: OpCode) -> bool {
    matches!(
        op,
        OpCode::Const(_)
            | OpCode::LoadField(_, _)
            | OpCode::LoadFieldRaw(_, _)
            | OpCode::LoadMeta(_)
            | OpCode::LoadStd(_)
            | OpCode::LoadParam(_, _)
            | OpCode::LoadLocal(_)
            | OpCode::LoadIsValid(_)
    )
}

/// Fold constant expressions. Returns true if anything changed.
fn const_fold(cp: &mut CompiledProgram) -> bool {
    let targets = jump_targets(cp);
    let code = &mut cp.code;
    let n = code.len();
    let mut changed = false;
    for i in 0..n {
        // Three-opcode windows first (they subsume a pair at the same
        // spot): Const;Const;{Bin,Concat}.
        if i + 2 < n && !targets[i + 1] && !targets[i + 2] {
            if let (OpCode::Const(a), OpCode::Const(b)) = (code[i], code[i + 1]) {
                match code[i + 2] {
                    OpCode::Bin(op, w) => {
                        code[i] = OpCode::Const(bin_op(op, a, b, w));
                        code[i + 1] = OpCode::Nop;
                        code[i + 2] = OpCode::Nop;
                        changed = true;
                        continue;
                    }
                    OpCode::Concat(shift, w) => {
                        code[i] = OpCode::Const(truncate((a << shift) | b, w));
                        code[i + 1] = OpCode::Nop;
                        code[i + 2] = OpCode::Nop;
                        changed = true;
                        continue;
                    }
                    _ => {}
                }
            }
        }
        if i + 1 >= n || targets[i + 1] {
            continue;
        }
        match (code[i], code[i + 1]) {
            (OpCode::Const(x), OpCode::Un(op, w)) => {
                let v = match op {
                    UnOp::Not => truncate(!x, w),
                    UnOp::Neg => truncate(x.wrapping_neg(), w),
                    UnOp::LNot => (x == 0) as u128,
                };
                code[i] = OpCode::Const(v);
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (OpCode::Const(x), OpCode::SliceE(hi, lo)) => {
                code[i] = OpCode::Const(truncate(x >> lo, hi - lo + 1));
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (OpCode::Const(x), OpCode::CastE(w)) => {
                code[i] = OpCode::Const(truncate(x, w));
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (OpCode::Const(x), OpCode::ConstBin(op, w, k)) => {
                code[i] = OpCode::Const(bin_op(op, x, k, w));
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (push, OpCode::Pop) if is_pure_push(push) => {
                code[i] = OpCode::Nop;
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            _ => {}
        }
    }
    if changed {
        compact(cp);
    }
    changed
}

/// Eliminate stores into locals/metadata no opcode ever loads. Locals
/// and user metadata are per-packet scratch zeroed by `Env::reset` and
/// invisible to every observable (verdict, trace, stats, externs), so a
/// store nothing reads is dead by construction. The meter-partitioning
/// pre-pass evaluates IR expressions through the reference `eval`, never
/// bytecode, so it cannot observe the elision either.
fn dead_store(cp: &mut CompiledProgram) -> bool {
    let mut read_locals: HashSet<u32> = HashSet::new();
    let mut read_metas: HashSet<u32> = HashSet::new();
    for op in &cp.code {
        match *op {
            OpCode::LoadLocal(l) => {
                read_locals.insert(l);
            }
            OpCode::LoadMeta(m) => {
                read_metas.insert(m);
            }
            _ => {}
        }
    }
    let mut changed = false;
    for op in &mut cp.code {
        match op {
            OpCode::StoreLocal(l, _) if !read_locals.contains(l) => {
                *op = OpCode::Pop;
                changed = true;
            }
            OpCode::StoreMeta(m, _) if !read_metas.contains(m) => {
                *op = OpCode::Pop;
                changed = true;
            }
            OpCode::Apply { hit_into, .. } | OpCode::FieldApply { hit_into, .. }
                if *hit_into != NO_HIT_LOCAL && !read_locals.contains(hit_into) =>
            {
                *hit_into = NO_HIT_LOCAL;
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Fuse hot adjacent pairs into superinstructions.
fn fuse(cp: &mut CompiledProgram) -> bool {
    let targets = jump_targets(cp);
    let code = &mut cp.code;
    let n = code.len();
    let mut changed = false;
    for i in 0..n.saturating_sub(1) {
        if targets[i + 1] {
            continue;
        }
        match (code[i], code[i + 1]) {
            (OpCode::Bin(op, w), OpCode::BranchIfZero(t)) => {
                code[i] = OpCode::CmpBranch(op, w, t);
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (OpCode::Const(k), OpCode::Bin(op, w)) => {
                code[i] = OpCode::ConstBin(op, w, k);
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (OpCode::ConstBin(op, w, k), OpCode::BranchIfZero(t)) => {
                code[i] = OpCode::ConstCmpBranch(op, w, k, t);
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            (
                OpCode::LoadField(h, f),
                OpCode::Apply {
                    tid,
                    nkeys: 1,
                    hit_into,
                },
            ) => {
                code[i] = OpCode::FieldApply {
                    h,
                    f,
                    tid,
                    hit_into,
                };
                code[i + 1] = OpCode::Nop;
                changed = true;
            }
            _ => {}
        }
    }
    if changed {
        compact(cp);
    }
    changed
}

/// Chain-resolution hop cap (cycle guard for jump-to-jump loops).
const MAX_THREAD_HOPS: usize = 64;

/// Follow `Jump` chains (and `Nop` fall-throughs, defensively) from `t`
/// to the final destination. Every hop is itself a semantics-preserving
/// transfer, so stopping early at the hop cap is still correct.
fn resolve_target(code: &[OpCode], mut t: u32) -> u32 {
    for _ in 0..MAX_THREAD_HOPS {
        match code[t as usize] {
            OpCode::Nop => t += 1,
            OpCode::Jump(u) if u != t => t = u,
            _ => break,
        }
    }
    t
}

/// Retarget every stored pc through `Jump` chains; drop jumps and
/// branches that land on the next instruction.
fn jump_thread(cp: &mut CompiledProgram) -> bool {
    let mut changed = false;
    let n = cp.code.len();
    for i in 0..n {
        let resolved = match cp.code[i] {
            OpCode::Jump(t)
            | OpCode::BranchIfZero(t)
            | OpCode::Exit(t)
            | OpCode::CmpBranch(_, _, t)
            | OpCode::ConstCmpBranch(_, _, _, t) => resolve_target(&cp.code, t),
            _ => continue,
        };
        match &mut cp.code[i] {
            OpCode::Jump(t) => {
                if resolved as usize == i + 1 {
                    cp.code[i] = OpCode::Nop;
                    changed = true;
                } else if *t != resolved {
                    *t = resolved;
                    changed = true;
                }
            }
            OpCode::BranchIfZero(t) => {
                if resolved as usize == i + 1 {
                    cp.code[i] = OpCode::Pop;
                    changed = true;
                } else if *t != resolved {
                    *t = resolved;
                    changed = true;
                }
            }
            OpCode::Exit(t) | OpCode::CmpBranch(_, _, t) | OpCode::ConstCmpBranch(_, _, _, t) => {
                if *t != resolved {
                    *t = resolved;
                    changed = true;
                }
            }
            _ => unreachable!(),
        }
    }
    let mut select_changed = false;
    for sid in 0..cp.selects.len() {
        let resolved = resolve_target(&cp.code, cp.selects[sid].default);
        if cp.selects[sid].default != resolved {
            cp.selects[sid].default = resolved;
            select_changed = true;
        }
        for a in 0..cp.selects[sid].arms.len() {
            let resolved = resolve_target(&cp.code, cp.selects[sid].arms[a].1);
            if cp.selects[sid].arms[a].1 != resolved {
                cp.selects[sid].arms[a].1 = resolved;
                select_changed = true;
            }
        }
    }
    for a in 0..cp.action_pcs.len() {
        let resolved = resolve_target(&cp.code, cp.action_pcs[a]);
        if cp.action_pcs[a] != resolved {
            cp.action_pcs[a] = resolved;
            select_changed = true;
        }
    }
    if changed {
        compact(cp);
    }
    changed || select_changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceTables;
    use netdebug_p4::ast::BinOp;

    /// A minimal synthetic program around a hand-written code array.
    fn prog(code: Vec<OpCode>) -> CompiledProgram {
        CompiledProgram {
            code,
            action_pcs: Vec::new(),
            selects: Vec::new(),
            headers: Vec::new(),
            deparse: Vec::new(),
            table_defaults: Vec::new(),
            names: TraceTables::default(),
            passes: PassConfig::none(),
        }
    }

    #[test]
    fn const_fold_collapses_to_nothing() {
        // 2 + 3 computed and discarded: the whole expression vanishes.
        let mut cp = prog(vec![
            OpCode::Const(2),
            OpCode::Const(3),
            OpCode::Bin(BinOp::Add, 8),
            OpCode::Pop,
            OpCode::Finish,
        ]);
        optimize(
            &mut cp,
            PassConfig {
                const_fold: true,
                ..PassConfig::none()
            },
        );
        assert_eq!(cp.code, vec![OpCode::Finish]);
    }

    #[test]
    fn const_fold_respects_jump_targets() {
        // pc 2 is a branch target: folding Const;Const;Bin would skip
        // the Bin a jump can land on. Must stay untouched.
        let mut cp = prog(vec![
            OpCode::Const(2),
            OpCode::Const(3),
            OpCode::Bin(BinOp::Add, 8),
            OpCode::StoreMeta(0, 8),
            OpCode::LoadMeta(0),
            OpCode::BranchIfZero(2),
            OpCode::Finish,
        ]);
        let before = cp.code.clone();
        optimize(
            &mut cp,
            PassConfig {
                const_fold: true,
                ..PassConfig::none()
            },
        );
        assert_eq!(cp.code, before);
    }

    #[test]
    fn fusion_builds_const_cmp_branch() {
        let mut cp = prog(vec![
            OpCode::LoadMeta(0),
            OpCode::Const(5),
            OpCode::Bin(BinOp::Eq, 8),
            OpCode::BranchIfZero(5),
            OpCode::MarkDrop,
            OpCode::Finish,
        ]);
        optimize(
            &mut cp,
            PassConfig {
                fuse: true,
                ..PassConfig::none()
            },
        );
        assert_eq!(
            cp.code,
            vec![
                OpCode::LoadMeta(0),
                OpCode::ConstCmpBranch(BinOp::Eq, 8, 5, 3),
                OpCode::MarkDrop,
                OpCode::Finish,
            ]
        );
    }

    #[test]
    fn dead_store_rewrites_unread_slots() {
        // local 0 is stored but never loaded; local 1 is loaded.
        let mut cp = prog(vec![
            OpCode::Const(7),
            OpCode::StoreLocal(0, 8),
            OpCode::Const(9),
            OpCode::StoreLocal(1, 8),
            OpCode::LoadLocal(1),
            OpCode::Pop,
            OpCode::Finish,
        ]);
        optimize(
            &mut cp,
            PassConfig {
                dead_store: true,
                ..PassConfig::none()
            },
        );
        assert_eq!(
            cp.code,
            vec![
                OpCode::Const(7),
                OpCode::Pop,
                OpCode::Const(9),
                OpCode::StoreLocal(1, 8),
                OpCode::LoadLocal(1),
                OpCode::Pop,
                OpCode::Finish,
            ]
        );
    }

    #[test]
    fn dead_store_drops_unread_hit_capture() {
        let mut cp = prog(vec![
            OpCode::Apply {
                tid: 0,
                nkeys: 0,
                hit_into: 3,
            },
            OpCode::Finish,
        ]);
        optimize(
            &mut cp,
            PassConfig {
                dead_store: true,
                ..PassConfig::none()
            },
        );
        assert_eq!(
            cp.code[0],
            OpCode::Apply {
                tid: 0,
                nkeys: 0,
                hit_into: NO_HIT_LOCAL,
            }
        );
    }

    #[test]
    fn jump_threading_flattens_chains() {
        // Branch to a jump to a jump: everything lands directly on the
        // final destination and both intermediate jumps — now jumps to
        // the next instruction — vanish.
        let mut cp = prog(vec![
            OpCode::LoadMeta(0),
            OpCode::BranchIfZero(3),
            OpCode::MarkDrop,
            OpCode::Jump(4),
            OpCode::Jump(5),
            OpCode::Finish,
        ]);
        optimize(
            &mut cp,
            PassConfig {
                jump_thread: true,
                ..PassConfig::none()
            },
        );
        assert_eq!(
            cp.code,
            vec![
                OpCode::LoadMeta(0),
                OpCode::BranchIfZero(3),
                OpCode::MarkDrop,
                OpCode::Finish,
            ]
        );
    }
}
