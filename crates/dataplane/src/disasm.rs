//! A human-readable disassembler for the flat bytecode.
//!
//! [`Disassembly`] wraps a [`CompiledProgram`] and renders one line per
//! instruction through [`core::fmt::Display`]: a four-digit instruction
//! index, a mnemonic, operands with every interned name resolved (tables,
//! actions, headers, parser states, controls) and `-> NNNN` arrows on
//! jump targets. Action bodies are labelled at their entry points. This
//! is the introspection surface for the optimization pipeline — diff the
//! output of `CompiledProgram::compile_with(ir, PassConfig::none())`
//! against the default to see exactly what the passes did:
//!
//! ```text
//! 0011  field_apply      ethernet[0] dmac -> a0 smac_learn
//! ```

use crate::compile::{CompiledProgram, OpCode, NO_HIT_LOCAL};
use core::fmt;

/// Lazily rendered disassembly of a [`CompiledProgram`]; obtain via
/// `CompiledProgram::disassemble()` or `Dataplane::disassemble()` and
/// print with `{}`.
pub struct Disassembly<'a> {
    cp: &'a CompiledProgram,
}

impl<'a> Disassembly<'a> {
    pub(crate) fn new(cp: &'a CompiledProgram) -> Disassembly<'a> {
        Disassembly { cp }
    }
}

impl fmt::Display for Disassembly<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cp = self.cp;
        let names = cp.names();
        let hdr = |h: u32| names.headers[h as usize].as_ref();
        writeln!(f, "; passes: {}", cp.passes())?;
        for (pc, op) in cp.code.iter().enumerate() {
            for (aid, &entry) in cp.action_pcs.iter().enumerate() {
                if entry as usize == pc {
                    writeln!(f, "{}:", names.actions[aid])?;
                }
            }
            write!(f, "{pc:04}  ")?;
            match *op {
                OpCode::Const(v) => writeln!(f, "{:<17}{v:#x}", "const")?,
                OpCode::LoadField(h, x) => writeln!(f, "{:<17}{}[{x}]", "load_field", hdr(h))?,
                OpCode::LoadFieldRaw(h, x) => {
                    writeln!(f, "{:<17}{}[{x}]", "load_field_raw", hdr(h))?
                }
                OpCode::LoadMeta(m) => writeln!(f, "{:<17}m{m}", "load_meta")?,
                OpCode::LoadStd(s) => writeln!(f, "{:<17}{s:?}", "load_std")?,
                OpCode::LoadParam(i, w) => writeln!(f, "{:<17}p{i} w{w}", "load_param")?,
                OpCode::LoadLocal(l) => writeln!(f, "{:<17}l{l}", "load_local")?,
                OpCode::LoadIsValid(h) => writeln!(f, "{:<17}{}", "load_is_valid", hdr(h))?,
                OpCode::Un(op, w) => writeln!(f, "{:<17}{op:?} w{w}", "un")?,
                OpCode::Bin(op, w) => writeln!(f, "{:<17}{op:?} w{w}", "bin")?,
                OpCode::Concat(s, w) => writeln!(f, "{:<17}shift={s} w{w}", "concat")?,
                OpCode::SliceE(hi, lo) => writeln!(f, "{:<17}[{hi}:{lo}]", "slice")?,
                OpCode::CastE(w) => writeln!(f, "{:<17}w{w}", "cast")?,
                OpCode::SliceMerge(hi, lo) => writeln!(f, "{:<17}[{hi}:{lo}]", "slice_merge")?,
                OpCode::StoreField(h, x, w) => {
                    writeln!(f, "{:<17}{}[{x}] w{w}", "store_field", hdr(h))?
                }
                OpCode::StoreMeta(m, w) => writeln!(f, "{:<17}m{m} w{w}", "store_meta")?,
                OpCode::StoreLocal(l, w) => writeln!(f, "{:<17}l{l} w{w}", "store_local")?,
                OpCode::StoreEgressSpec => writeln!(f, "store_egress_spec")?,
                OpCode::StorePacketLength => writeln!(f, "store_packet_length")?,
                OpCode::StoreTimestamp => writeln!(f, "store_timestamp")?,
                OpCode::Pop => writeln!(f, "pop")?,
                OpCode::Jump(t) => writeln!(f, "{:<17}-> {t:04}", "jump")?,
                OpCode::BranchIfZero(t) => writeln!(f, "{:<17}-> {t:04}", "branch_if_zero")?,
                OpCode::Return => writeln!(f, "return")?,
                OpCode::Exit(t) => writeln!(f, "{:<17}-> {t:04}", "exit")?,
                OpCode::Apply {
                    tid,
                    nkeys,
                    hit_into,
                } => {
                    write!(
                        f,
                        "{:<17}{} nkeys={nkeys}",
                        "apply", names.tables[tid as usize]
                    )?;
                    if hit_into != NO_HIT_LOCAL {
                        write!(f, " hit->l{hit_into}")?;
                    }
                    writeln!(f)?
                }
                OpCode::FieldApply {
                    h,
                    f: x,
                    tid,
                    hit_into,
                } => {
                    write!(
                        f,
                        "{:<17}{}[{x}] {}",
                        "field_apply",
                        hdr(h),
                        names.tables[tid as usize]
                    )?;
                    if hit_into != NO_HIT_LOCAL {
                        write!(f, " hit->l{hit_into}")?;
                    }
                    writeln!(f)?
                }
                OpCode::MarkDrop => writeln!(f, "mark_drop")?,
                OpCode::SetValidHdr(h, v) => writeln!(f, "{:<17}{} {v}", "set_valid", hdr(h))?,
                OpCode::CounterInc(id) => writeln!(f, "{:<17}c{id}", "counter_inc")?,
                OpCode::RegisterRead(id) => writeln!(f, "{:<17}r{id}", "register_read")?,
                OpCode::RegisterWrite(id) => writeln!(f, "{:<17}r{id}", "register_write")?,
                OpCode::MeterExecute(id) => writeln!(f, "{:<17}mt{id}", "meter_execute")?,
                OpCode::StateEnter(sid) => {
                    writeln!(f, "{:<17}{}", "state_enter", names.states[sid as usize])?
                }
                OpCode::Extract(h) => writeln!(f, "{:<17}{}", "extract", hdr(h))?,
                OpCode::Select(sid) => {
                    let sel = &cp.selects[sid as usize];
                    write!(f, "{:<17}nkeys={}", "select", sel.nkeys)?;
                    for (pats, t) in &sel.arms {
                        write!(f, " {pats:?} -> {t:04}")?;
                    }
                    writeln!(f, " default -> {:04}", sel.default)?
                }
                OpCode::Accept => writeln!(f, "accept")?,
                OpCode::Reject => writeln!(f, "reject")?,
                OpCode::ControlEnter(cid) => {
                    writeln!(f, "{:<17}{}", "control_enter", names.controls[cid as usize])?
                }
                OpCode::Finish => writeln!(f, "finish")?,
                OpCode::Nop => writeln!(f, "nop")?,
                OpCode::ConstBin(op, w, k) => {
                    writeln!(f, "{:<17}{op:?} w{w} k={k:#x}", "const_bin")?
                }
                OpCode::CmpBranch(op, w, t) => {
                    writeln!(f, "{:<17}{op:?} w{w} -> {t:04}", "cmp_branch")?
                }
                OpCode::ConstCmpBranch(op, w, k, t) => writeln!(
                    f,
                    "{:<17}{op:?} w{w} k={k:#x} -> {t:04}",
                    "const_cmp_branch"
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::CompiledProgram;
    use crate::opt::PassConfig;
    use netdebug_p4::corpus;

    /// Pins the exact disassembly of the unoptimized reflector — the
    /// smallest corpus program — so any change to lowering or rendering
    /// is a conscious one.
    #[test]
    fn reflector_disassembly_is_pinned() {
        let ir = netdebug_p4::compile(corpus::REFLECTOR).unwrap();
        let cp = CompiledProgram::compile_with(&ir, PassConfig::none());
        let text = format!("{}", cp.disassemble());
        let expected = "\
; passes: none
0000  state_enter      start
0001  extract          ethernet
0002  jump             -> 0004
0003  reject
0004  accept
0005  control_enter    RefIngress
0006  load_field       ethernet[0]
0007  store_meta       m0 w48
0008  load_field       ethernet[1]
0009  store_field      ethernet[0] w48
0010  load_meta        m0
0011  store_field      ethernet[1] w48
0012  load_std         IngressPort
0013  store_egress_spec
0014  finish
NoAction:
0015  return
";
        assert_eq!(text, expected, "actual:\n{text}");
    }

    /// The optimized l2_switch contains the fused extract+apply
    /// superinstruction and renders its resolved names.
    #[test]
    fn optimized_l2_switch_shows_fusion() {
        let ir = netdebug_p4::compile(corpus::L2_SWITCH).unwrap();
        let cp = CompiledProgram::compile_with(&ir, PassConfig::default());
        let text = format!("{}", cp.disassemble());
        assert!(
            text.contains("field_apply"),
            "expected a fused field_apply:\n{text}"
        );
        let raw = CompiledProgram::compile_with(&ir, PassConfig::none());
        let raw_text = format!("{}", raw.disassemble());
        assert!(raw_text.lines().count() > text.lines().count());
    }
}
