//! Bit-level packet field access.
//!
//! P4 headers are bit-packed in network order: bit 0 of a header is the most
//! significant bit of its first byte. These helpers read and write arbitrary
//! bit ranges (up to 128 bits wide) against byte buffers; both the parser
//! (extract) and the deparser (emit) are built on them.

/// Read `width` bits starting `bit_off` bits into `data`, MSB-first.
///
/// Panics if the range exceeds the buffer — callers must length-check first
/// (the parser turns short packets into `reject`, it never panics).
pub fn read_bits(data: &[u8], bit_off: usize, width: usize) -> u128 {
    debug_assert!(width <= 128);
    let mut value: u128 = 0;
    for i in 0..width {
        let bit = bit_off + i;
        let byte = data[bit / 8];
        let shift = 7 - (bit % 8);
        value = (value << 1) | u128::from((byte >> shift) & 1);
    }
    value
}

/// Write the low `width` bits of `value` at `bit_off` bits into `data`,
/// MSB-first.
pub fn write_bits(data: &mut [u8], bit_off: usize, width: usize, value: u128) {
    debug_assert!(width <= 128);
    for i in 0..width {
        let bit = bit_off + i;
        let shift = 7 - (bit % 8);
        let v = ((value >> (width - 1 - i)) & 1) as u8;
        let byte = &mut data[bit / 8];
        *byte = (*byte & !(1 << shift)) | (v << shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_byte_reads() {
        let data = [0xAB, 0xCD, 0xEF];
        assert_eq!(read_bits(&data, 0, 8), 0xAB);
        assert_eq!(read_bits(&data, 8, 8), 0xCD);
        assert_eq!(read_bits(&data, 0, 24), 0xABCDEF);
    }

    #[test]
    fn sub_byte_reads() {
        // 0x45 = version 4, ihl 5 — the IPv4 first byte.
        let data = [0x45];
        assert_eq!(read_bits(&data, 0, 4), 4);
        assert_eq!(read_bits(&data, 4, 4), 5);
    }

    #[test]
    fn straddling_reads() {
        // flags(3) + fragOffset(13) across two bytes: 0b010_0000000000101
        let data = [0b0100_0000, 0b0000_0101];
        assert_eq!(read_bits(&data, 0, 3), 0b010);
        assert_eq!(read_bits(&data, 3, 13), 0b0000000000101);
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut data = [0u8; 16];
        write_bits(&mut data, 3, 13, 0x1ABC & 0x1FFF);
        assert_eq!(read_bits(&data, 3, 13), 0x1ABC & 0x1FFF);
        // Neighbouring bits untouched.
        assert_eq!(read_bits(&data, 0, 3), 0);
        write_bits(&mut data, 0, 3, 0b111);
        assert_eq!(read_bits(&data, 0, 3), 0b111);
        assert_eq!(read_bits(&data, 3, 13), 0x1ABC & 0x1FFF);
    }

    #[test]
    fn wide_fields() {
        let mut data = [0u8; 16];
        let v = u128::from_str_radix("0123456789ABCDEF0123456789ABCDEF", 16).unwrap();
        write_bits(&mut data, 0, 128, v);
        assert_eq!(read_bits(&data, 0, 128), v);
    }

    #[test]
    fn write_truncates_to_width() {
        let mut data = [0u8; 2];
        write_bits(&mut data, 0, 4, 0xFF);
        assert_eq!(read_bits(&data, 0, 4), 0xF);
        assert_eq!(read_bits(&data, 4, 4), 0);
    }
}
