//! The control-plane handle: epoch-publishing table mutation that is safe
//! to use **while batches are in flight**.
//!
//! A [`ControlPlane`] is a cheap clone of a few `Arc`s — the compiled
//! program (for validation and name resolution), the shared table cells,
//! and the publication generation/lock. It can be handed to another
//! thread and used to `install`/`remove`/`clear` entries while the owning
//! [`crate::Dataplane`] is mid-`process_batch_parallel`: each mutation
//! publishes a fresh [`crate::EntrySnapshot`] atomically, in-flight
//! shards keep reading the snapshot they pinned at batch start, and the
//! next batch (or the next sequential packet) observes the new epochs.
//!
//! Publication is also the **index compile point**: every published
//! snapshot carries a [`crate::LookupIndex`] built from the table's
//! declared [`netdebug_p4::ir::KeySignature`] (exact → hash, LPM →
//! prefix-length buckets, anything else → priority scan), so the packet
//! path never pays per-lookup compilation and the control plane pays it
//! once per mutation — off the packet threads entirely.
//! Mutations never force the packet path off the parallel engine; the
//! only synchronisation between the two is the brief publication lock a
//! pin point takes when (and only when) a publication actually landed
//! since it last pinned.

use crate::table::{RuntimeEntry, TableError, TableState};
use netdebug_p4::ir::{self, IrPattern, KeySignature};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from the control-plane API.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// No such table.
    NoSuchTable(String),
    /// No such action.
    NoSuchAction(String),
    /// No such extern instance.
    NoSuchExtern(String),
    /// Entry rejected.
    Table(TableError),
}

impl core::fmt::Display for ControlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ControlError::NoSuchTable(n) => write!(f, "no such table `{n}`"),
            ControlError::NoSuchAction(n) => write!(f, "no such action `{n}`"),
            ControlError::NoSuchExtern(n) => write!(f, "no such extern `{n}`"),
            ControlError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<TableError> for ControlError {
    fn from(e: TableError) -> Self {
        ControlError::Table(e)
    }
}

/// A detached, clonable handle onto a data plane's tables.
///
/// Obtained from [`crate::Dataplane::control_plane`] (or
/// `Device::control_plane` in `netdebug-hw`). All methods take `&self`:
/// the handle can live on a control-plane thread and mutate tables
/// concurrently with packet processing — mutations land as atomic epoch
/// publications, never as in-place edits.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    program: Arc<ir::Program>,
    tables: Arc<Vec<TableState>>,
    /// Bumped (release) after every successful publication; the packet
    /// path re-pins its cached snapshots only when this moves, so
    /// single-packet processing costs one atomic load per packet instead
    /// of a lock-and-allocate per table.
    generation: Arc<AtomicU64>,
    /// Held across every publication *and* across a multi-table re-pin:
    /// serialising the two is what makes a pinned snapshot *set* a
    /// publication-order prefix — a window can never observe mutation K+1
    /// without mutation K, even when they touch different tables.
    publish_lock: Arc<std::sync::Mutex<()>>,
}

impl ControlPlane {
    pub(crate) fn new(
        program: Arc<ir::Program>,
        tables: Arc<Vec<TableState>>,
        generation: Arc<AtomicU64>,
        publish_lock: Arc<std::sync::Mutex<()>>,
    ) -> Self {
        ControlPlane {
            program,
            tables,
            generation,
            publish_lock,
        }
    }

    /// Run `publish` under the publication lock and bump the generation
    /// after it succeeds, so a reader observing the new generation always
    /// sees the new snapshot and no reader can pin a snapshot set that
    /// interleaves two publications.
    fn publishing<T>(
        &self,
        publish: impl FnOnce() -> Result<T, TableError>,
    ) -> Result<T, TableError> {
        let _guard = self.publish_lock.lock().expect("publish lock poisoned");
        let out = publish()?;
        self.generation.fetch_add(1, Ordering::Release);
        Ok(out)
    }

    /// The program these tables belong to.
    pub fn program(&self) -> &ir::Program {
        &self.program
    }

    fn table_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .table_by_name(name)
            .ok_or_else(|| ControlError::NoSuchTable(name.to_string()))
    }

    fn action_id(&self, name: &str) -> Result<usize, ControlError> {
        self.program
            .action_by_name(name)
            .ok_or_else(|| ControlError::NoSuchAction(name.to_string()))
    }

    /// Install an arbitrary entry; returns the table's new epoch.
    pub fn install(
        &self,
        table: &str,
        patterns: Vec<IrPattern>,
        action: &str,
        args: Vec<u128>,
        priority: i32,
    ) -> Result<u64, ControlError> {
        let tid = self.table_id(table)?;
        let aid = self.action_id(action)?;
        let entry = RuntimeEntry {
            patterns,
            action: ir::ActionCall { action: aid, args },
            priority,
        };
        let epoch = self.publishing(|| {
            self.tables[tid].install(&self.program.tables[tid], &self.program.actions, entry)
        })?;
        Ok(epoch)
    }

    /// Install an exact-match entry (one value per key); returns the new
    /// epoch.
    pub fn install_exact(
        &self,
        table: &str,
        keys: Vec<u128>,
        action: &str,
        args: Vec<u128>,
    ) -> Result<u64, ControlError> {
        let patterns = keys.into_iter().map(IrPattern::Value).collect();
        self.install(table, patterns, action, args, 0)
    }

    /// Install an LPM entry on a single-key LPM table (priority = prefix
    /// length, so longest prefix wins); returns the new epoch.
    pub fn install_lpm(
        &self,
        table: &str,
        prefix: u128,
        prefix_len: u16,
        action: &str,
        args: Vec<u128>,
    ) -> Result<u64, ControlError> {
        let tid = self.table_id(table)?;
        let width = self.program.tables[tid]
            .keys
            .first()
            .map(|k| k.width)
            .unwrap_or(32);
        let pattern = crate::table::lpm_pattern(prefix, prefix_len, width);
        self.install(table, vec![pattern], action, args, i32::from(prefix_len))
    }

    /// Remove the entry with exactly these patterns and priority. Returns
    /// the new epoch, or `None` if no such entry was installed.
    pub fn remove(
        &self,
        table: &str,
        patterns: &[IrPattern],
        priority: i32,
    ) -> Result<Option<u64>, ControlError> {
        let tid = self.table_id(table)?;
        let _guard = self.publish_lock.lock().expect("publish lock poisoned");
        let removed = self.tables[tid].remove(patterns, priority);
        if removed.is_some() {
            // Bump only on an actual publication (absent entry = no-op).
            self.generation.fetch_add(1, Ordering::Release);
        }
        Ok(removed)
    }

    /// Remove all entries from a table; returns the new epoch.
    pub fn clear(&self, table: &str) -> Result<u64, ControlError> {
        let tid = self.table_id(table)?;
        let epoch = self.publishing(|| Ok(self.tables[tid].clear()))?;
        Ok(epoch)
    }

    /// The current epoch of a table.
    pub fn epoch(&self, table: &str) -> Result<u64, ControlError> {
        let tid = self.table_id(table)?;
        Ok(self.tables[tid].epoch())
    }

    /// Current epochs of every table, in program table order.
    pub fn epochs(&self) -> Vec<u64> {
        self.tables.iter().map(|t| t.epoch()).collect()
    }

    /// Occupancy and capacity of a table: (installed entries, capacity).
    pub fn occupancy(&self, table: &str) -> Result<(usize, u64), ControlError> {
        let tid = self.table_id(table)?;
        let t = &self.tables[tid];
        Ok((t.len(), t.capacity()))
    }

    /// The key signature a table's lookup indexes compile from — which
    /// structure ([`crate::LookupIndex`]) every publication builds.
    pub fn key_signature(&self, table: &str) -> Result<KeySignature, ControlError> {
        let tid = self.table_id(table)?;
        Ok(self.tables[tid].key_signature())
    }
}
