//! Stateful externs: registers, counters and meters.
//!
//! All three are arrays of cells indexed by a runtime expression. Counters
//! count packets and bytes; registers hold `bit<W>` values readable and
//! writable from the data plane and the control plane; meters are simplified
//! srTCM-style token buckets measured in packets, returning a colour
//! (0 green / 1 yellow / 2 red).

use netdebug_p4::ir::{self, ExternKindIr};
use serde::{Deserialize, Serialize};

/// Meter colour constants.
pub const COLOR_GREEN: u128 = 0;
/// Yellow: above committed rate, below peak rate.
pub const COLOR_YELLOW: u128 = 1;
/// Red: above peak rate.
pub const COLOR_RED: u128 = 2;

/// Configuration of one meter cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeterConfig {
    /// Committed rate in packets per 1M cycles.
    pub cir_per_mcycle: u64,
    /// Committed burst size in packets.
    pub cbs: u64,
    /// Peak rate in packets per 1M cycles.
    pub pir_per_mcycle: u64,
    /// Peak burst size in packets.
    pub pbs: u64,
}

impl Default for MeterConfig {
    fn default() -> Self {
        // Permissive default: everything green until configured.
        MeterConfig {
            cir_per_mcycle: u64::MAX,
            cbs: u64::MAX,
            pir_per_mcycle: u64::MAX,
            pbs: u64::MAX,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct MeterCell {
    config: MeterConfig,
    committed_tokens: f64,
    peak_tokens: f64,
    last_cycle: u64,
}

impl MeterCell {
    fn new() -> Self {
        let config = MeterConfig::default();
        MeterCell {
            config,
            // Buckets start full so an unconfigured meter is permissive.
            committed_tokens: config.cbs as f64,
            peak_tokens: config.pbs as f64,
            last_cycle: 0,
        }
    }

    fn execute(&mut self, now_cycle: u64) -> u128 {
        let dt = now_cycle.saturating_sub(self.last_cycle) as f64;
        self.last_cycle = now_cycle;
        let cir = self.config.cir_per_mcycle as f64 / 1_000_000.0;
        let pir = self.config.pir_per_mcycle as f64 / 1_000_000.0;
        self.committed_tokens = (self.committed_tokens + dt * cir).min(self.config.cbs as f64);
        self.peak_tokens = (self.peak_tokens + dt * pir).min(self.config.pbs as f64);
        if self.peak_tokens < 1.0 {
            COLOR_RED
        } else if self.committed_tokens < 1.0 {
            self.peak_tokens -= 1.0;
            COLOR_YELLOW
        } else {
            self.committed_tokens -= 1.0;
            self.peak_tokens -= 1.0;
            COLOR_GREEN
        }
    }
}

/// One extern instance's runtime state.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ExternCells {
    Register { width: u16, cells: Vec<u128> },
    Counter { packets: Vec<u64>, bytes: Vec<u64> },
    Meter { cells: Vec<MeterCell> },
}

/// Runtime state for all externs of a program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExternState {
    instances: Vec<ExternCells>,
}

impl ExternState {
    /// Allocate state matching the program's extern declarations.
    pub fn new(externs: &[ir::ExternIr]) -> Self {
        let instances = externs
            .iter()
            .map(|e| match e.kind {
                ExternKindIr::Register => ExternCells::Register {
                    width: e.width,
                    cells: vec![0; e.size as usize],
                },
                ExternKindIr::Counter => ExternCells::Counter {
                    packets: vec![0; e.size as usize],
                    bytes: vec![0; e.size as usize],
                },
                ExternKindIr::Meter => ExternCells::Meter {
                    cells: (0..e.size).map(|_| MeterCell::new()).collect(),
                },
            })
            .collect();
        ExternState { instances }
    }

    /// Data-plane register read (out-of-range index reads 0, as hardware
    /// register files typically alias or return garbage — zero is the
    /// documented choice here).
    pub fn register_read(&self, id: usize, index: usize) -> u128 {
        match &self.instances[id] {
            ExternCells::Register { cells, .. } => cells.get(index).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Data-plane register write (out-of-range index is a no-op).
    pub fn register_write(&mut self, id: usize, index: usize, value: u128) {
        if let ExternCells::Register { cells, width } = &mut self.instances[id] {
            if let Some(cell) = cells.get_mut(index) {
                *cell = ir::truncate(value, *width);
            }
        }
    }

    /// Count a packet of `bytes` length against a counter cell.
    pub fn counter_inc(&mut self, id: usize, index: usize, byte_len: usize) {
        if let ExternCells::Counter { packets, bytes } = &mut self.instances[id] {
            if let Some(c) = packets.get_mut(index) {
                *c += 1;
            }
            if let Some(b) = bytes.get_mut(index) {
                *b += byte_len as u64;
            }
        }
    }

    /// Control-plane counter read: (packets, bytes).
    pub fn counter_read(&self, id: usize, index: usize) -> (u64, u64) {
        match &self.instances[id] {
            ExternCells::Counter { packets, bytes } => (
                packets.get(index).copied().unwrap_or(0),
                bytes.get(index).copied().unwrap_or(0),
            ),
            _ => (0, 0),
        }
    }

    /// Execute a meter cell at the given device time; returns a colour.
    pub fn meter_execute(&mut self, id: usize, index: usize, now_cycle: u64) -> u128 {
        match &mut self.instances[id] {
            ExternCells::Meter { cells } => cells
                .get_mut(index)
                .map(|c| c.execute(now_cycle))
                .unwrap_or(COLOR_RED),
            _ => COLOR_RED,
        }
    }

    /// Control-plane meter configuration.
    pub fn meter_configure(&mut self, id: usize, index: usize, config: MeterConfig) {
        if let ExternCells::Meter { cells } = &mut self.instances[id] {
            if let Some(c) = cells.get_mut(index) {
                c.config = config;
                c.committed_tokens = config.cbs as f64;
                c.peak_tokens = config.pbs as f64;
            }
        }
    }

    /// Clone this state for a parallel shard: registers and meter state
    /// are carried over (registers may be *read* by the shard; meter cells
    /// are only executed by the shard that *owns* them under the
    /// meter-partitioned path — see `Program::parallel_class` — and flow
    /// back via [`ExternState::adopt_meter_cell`]), while counters start
    /// from zero so each shard accumulates a pure delta.
    pub fn shard_clone(&self) -> ExternState {
        let instances = self
            .instances
            .iter()
            .map(|inst| match inst {
                ExternCells::Counter { packets, bytes } => ExternCells::Counter {
                    packets: vec![0; packets.len()],
                    bytes: vec![0; bytes.len()],
                },
                other => other.clone(),
            })
            .collect();
        ExternState { instances }
    }

    /// Fold a shard's counter deltas back in (commutative sum). Registers
    /// and meters are left untouched: registers cannot have been written
    /// on any parallel path, and meter cells flow back separately through
    /// [`ExternState::adopt_meter_cell`] under per-shard cell ownership.
    pub fn absorb_counters(&mut self, shard: &ExternState) {
        for (mine, theirs) in self.instances.iter_mut().zip(&shard.instances) {
            if let (
                ExternCells::Counter { packets, bytes },
                ExternCells::Counter {
                    packets: dp,
                    bytes: db,
                },
            ) = (mine, theirs)
            {
                for (c, d) in packets.iter_mut().zip(dp) {
                    *c += d;
                }
                for (b, d) in bytes.iter_mut().zip(db) {
                    *b += d;
                }
            }
        }
    }

    /// Copy one meter cell's full state (config, token levels, last
    /// execution cycle) from a shard back into this state.
    ///
    /// Used by the meter-partitioned parallel path: the batch partitioning
    /// guarantees every meter cell was executed by at most one shard, so
    /// adopting each shard's owned cells reproduces the sequential
    /// per-cell token-bucket evolution exactly. Out-of-range indices (a
    /// runtime `meter.execute` past the declared size mutates nothing) and
    /// non-meter externs are no-ops.
    pub fn adopt_meter_cell(&mut self, shard: &ExternState, id: usize, index: usize) {
        let Some(ExternCells::Meter { cells: theirs }) = shard.instances.get(id) else {
            return;
        };
        let Some(theirs) = theirs.get(index) else {
            return;
        };
        if let Some(ExternCells::Meter { cells }) = self.instances.get_mut(id) {
            if let Some(mine) = cells.get_mut(index) {
                *mine = theirs.clone();
            }
        }
    }

    /// Reset all counters and registers (meters keep their configs).
    pub fn clear(&mut self) {
        for inst in &mut self.instances {
            match inst {
                ExternCells::Register { cells, .. } => cells.iter_mut().for_each(|c| *c = 0),
                ExternCells::Counter { packets, bytes } => {
                    packets.iter_mut().for_each(|c| *c = 0);
                    bytes.iter_mut().for_each(|c| *c = 0);
                }
                ExternCells::Meter { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn externs() -> Vec<ir::ExternIr> {
        vec![
            ir::ExternIr {
                kind: ExternKindIr::Register,
                name: "r".into(),
                width: 8,
                size: 4,
            },
            ir::ExternIr {
                kind: ExternKindIr::Counter,
                name: "c".into(),
                width: 64,
                size: 2,
            },
            ir::ExternIr {
                kind: ExternKindIr::Meter,
                name: "m".into(),
                width: 64,
                size: 1,
            },
        ]
    }

    #[test]
    fn register_read_write_truncates() {
        let mut s = ExternState::new(&externs());
        s.register_write(0, 1, 0x1FF);
        assert_eq!(s.register_read(0, 1), 0xFF); // truncated to 8 bits
        assert_eq!(s.register_read(0, 3), 0);
        // Out of range: silently ignored / zero.
        s.register_write(0, 99, 7);
        assert_eq!(s.register_read(0, 99), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = ExternState::new(&externs());
        s.counter_inc(1, 0, 64);
        s.counter_inc(1, 0, 128);
        s.counter_inc(1, 1, 1500);
        assert_eq!(s.counter_read(1, 0), (2, 192));
        assert_eq!(s.counter_read(1, 1), (1, 1500));
        s.clear();
        assert_eq!(s.counter_read(1, 0), (0, 0));
    }

    #[test]
    fn meter_colours_progress_with_load() {
        let mut s = ExternState::new(&externs());
        // 1 packet per 10k cycles committed, 2 per 10k peak; tiny bursts.
        s.meter_configure(
            2,
            0,
            MeterConfig {
                cir_per_mcycle: 100, // 100 pkts / 1M cycles = 1 / 10k cycles
                cbs: 2,
                pir_per_mcycle: 200,
                pbs: 4,
            },
        );
        // Burst of packets at the same instant: first ones green (burst),
        // then yellow (peak burst), then red.
        let mut colours = Vec::new();
        for _ in 0..8 {
            colours.push(s.meter_execute(2, 0, 1));
        }
        assert_eq!(&colours[0..2], &[COLOR_GREEN, COLOR_GREEN]);
        assert!(colours[2..].contains(&COLOR_YELLOW));
        assert_eq!(colours[7], COLOR_RED);

        // After a long quiet period tokens refill: green again.
        assert_eq!(s.meter_execute(2, 0, 50_000), COLOR_GREEN);
    }

    #[test]
    fn shard_clone_zeroes_counters_and_keeps_registers() {
        let mut s = ExternState::new(&externs());
        s.register_write(0, 1, 0x42);
        s.counter_inc(1, 0, 100);
        let mut shard = s.shard_clone();
        // Registers visible read-only; counters start from zero.
        assert_eq!(shard.register_read(0, 1), 0x42);
        assert_eq!(shard.counter_read(1, 0), (0, 0));
        // Two shards accumulate independently; absorption sums them.
        let mut shard2 = s.shard_clone();
        shard.counter_inc(1, 0, 64);
        shard2.counter_inc(1, 0, 36);
        shard2.counter_inc(1, 1, 8);
        s.absorb_counters(&shard);
        s.absorb_counters(&shard2);
        assert_eq!(s.counter_read(1, 0), (3, 200));
        assert_eq!(s.counter_read(1, 1), (1, 8));
        // Master registers untouched by absorption.
        assert_eq!(s.register_read(0, 1), 0x42);
    }

    #[test]
    fn unconfigured_meter_is_green() {
        let mut s = ExternState::new(&externs());
        for t in 0..100 {
            assert_eq!(s.meter_execute(2, 0, t), COLOR_GREEN);
        }
    }
}
