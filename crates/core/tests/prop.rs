//! Property-based tests for the NetDebug core: accounting invariants of
//! the generator/checker pair and robustness of the probe machinery.

use netdebug::generator::{find_test_header, Expectation, FieldSweep, StreamSpec};
use netdebug::session::NetDebug;
use netdebug_hw::{Backend, Device};
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, PacketBuilder, TestHeader, TEST_HEADER_LEN};
use proptest::prelude::*;

fn reflector() -> NetDebug {
    NetDebug::new(Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation of packets: for every stream on every backend,
    /// sent == received + dropped + lost, and on the reflector (which never
    /// drops) the checker sees every packet exactly once, in order.
    #[test]
    fn accounting_invariant(
        count in 1u64..80,
        rate in proptest::option::of(1e5f64..1e7),
        payload_len in 0usize..64,
        port in 0u16..4,
    ) {
        let mut nd = reflector();
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(&vec![0xC3u8; payload_len])
        .build();
        let report = nd.run_session(&[StreamSpec {
            stream: 1,
            template,
            count,
            rate_pps: rate,
            as_port: port,
            sweeps: vec![],
            expect: Expectation::Forward { port: Some(port) },
        }]);
        let (_, stats) = &report.streams[0];
        prop_assert_eq!(stats.sent, count);
        prop_assert_eq!(stats.received + stats.dropped + stats.lost(), count);
        prop_assert_eq!(stats.received, count);
        prop_assert_eq!(stats.reordered, 0);
        prop_assert_eq!(stats.duplicates, 0);
        prop_assert_eq!(stats.corrupted, 0);
        prop_assert!(report.passed, "{}", report);
    }

    /// Sweeping arbitrary template bytes never breaks the test-header
    /// machinery: the checker still finds and validates every packet.
    #[test]
    fn sweeps_never_confuse_the_checker(
        count in 1u64..40,
        offset in 0usize..14,
        step in any::<u8>(),
    ) {
        let mut nd = reflector();
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(b"prop")
        .build();
        let report = nd.run_session(&[StreamSpec {
            stream: 1,
            template,
            count,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![FieldSweep { offset, step }],
            expect: Expectation::Any,
        }]);
        let (_, stats) = &report.streams[0];
        prop_assert_eq!(stats.received, count);
        prop_assert_eq!(stats.corrupted, 0);
    }

    /// find_test_header never panics and never misses a real header: when a
    /// valid header is embedded at `offset`, the scan returns some offset
    /// no later than it.
    #[test]
    fn find_test_header_finds_embedded(
        prefix in proptest::collection::vec(any::<u8>(), 0..48),
        payload in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut buf = prefix.clone();
        let hdr_at = buf.len();
        buf.resize(hdr_at + TEST_HEADER_LEN + payload.len(), 0);
        {
            let mut h = TestHeader::new_unchecked(&mut buf[hdr_at..]);
            h.set_magic();
            h.set_stream(3);
            h.set_seq(42);
            h.payload_mut().copy_from_slice(&payload);
            h.fill_payload_crc();
        }
        let found = find_test_header(&buf);
        prop_assert!(found.is_some());
        prop_assert!(found.unwrap() <= hdr_at);
    }

    /// Random garbage never panics the scanner.
    #[test]
    fn find_test_header_never_panics(data in proptest::collection::vec(any::<u8>(), 0..160)) {
        let _ = find_test_header(&data);
    }

    /// Parser-path probes are deterministic and never panic, for every
    /// corpus program.
    #[test]
    fn probes_deterministic(idx in 0usize..17) {
        let programs = corpus::corpus();
        let prog = &programs[idx % programs.len()];
        let ir = netdebug_p4::compile(prog.source).unwrap();
        let a = netdebug::probes::parser_path_probes(&ir);
        let b = netdebug::probes::parser_path_probes(&ir);
        prop_assert_eq!(a, b);
    }

    /// Indexed lookups stay shard-invariant under arbitrary
    /// `ChurnSchedule`s: every scheduled publication recompiles the
    /// exact-hash index of `l2_switch`'s dmac table between windows, and
    /// the churned stream's checker statistics must be identical at every
    /// shard count 1..=8.
    #[test]
    fn churned_index_republication_is_shard_invariant(
        raw_ops in proptest::collection::vec((0u64..3, 0u8..3, 0u8..4), 0..10),
        dst in 0u8..4,
        shards in 2usize..=8,
    ) {
        use netdebug::churn::{ChurnOp, ChurnSchedule};
        let mut schedule = ChurnSchedule::new();
        for &(window, op_sel, mac) in &raw_ops {
            let key = 0x0200_0000_0000u128 + u128::from(mac);
            let op = match op_sel {
                0 => ChurnOp::Exact {
                    table: "dmac".into(),
                    keys: vec![key],
                    action: "forward".into(),
                    args: vec![u128::from(mac % 4)],
                },
                // Removing an absent entry is a scheduled no-op; clears
                // republish the empty index.
                1 => ChurnOp::Remove {
                    table: "dmac".into(),
                    patterns: vec![netdebug_p4::ir::IrPattern::Value(key)],
                    priority: 0,
                },
                _ => ChurnOp::Clear { table: "dmac".into() },
            };
            schedule = schedule.before_window(window, op);
        }
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, dst),
        )
        .payload(b"churned-index")
        .build();
        let run = |shards: usize| {
            let mut nd = NetDebug::deploy(&Backend::reference(), corpus::L2_SWITCH).unwrap();
            nd.set_shards(shards);
            let spec = StreamSpec::simple(
                1,
                template.clone(),
                3 * NetDebug::STREAM_WINDOW,
                Expectation::Any,
            );
            nd.run_stream_churn(&spec, &schedule).unwrap();
            nd.checker().streams()[&1].clone()
        };
        let sequential = run(1);
        prop_assert_eq!(
            &sequential,
            &run(shards),
            "churned exact-index stream diverged at {} shards",
            shards
        );
    }

    /// Engine parity end to end: a whole NetDebug session — generator,
    /// device taps, checker — driven over an arbitrary `ChurnSchedule`
    /// produces identical checker statistics whether the device's data
    /// plane runs the flat compiled engine (the default) or the
    /// tree-walking reference oracle, at any shard count. This is the
    /// fleet/churn-driver face of the parity obligation the dataplane
    /// proptests pin packet by packet.
    #[test]
    fn churned_streams_identical_across_engines(
        raw_ops in proptest::collection::vec((0u64..3, 0u8..3, 0u8..4), 0..10),
        dst in 0u8..4,
        shards in 1usize..=4,
    ) {
        use netdebug::churn::{ChurnOp, ChurnSchedule};
        use netdebug_dataplane::Engine;
        let mut schedule = ChurnSchedule::new();
        for &(window, op_sel, mac) in &raw_ops {
            let key = 0x0200_0000_0000u128 + u128::from(mac);
            let op = match op_sel {
                0 => ChurnOp::Exact {
                    table: "dmac".into(),
                    keys: vec![key],
                    action: "forward".into(),
                    args: vec![u128::from(mac % 4)],
                },
                1 => ChurnOp::Remove {
                    table: "dmac".into(),
                    patterns: vec![netdebug_p4::ir::IrPattern::Value(key)],
                    priority: 0,
                },
                _ => ChurnOp::Clear { table: "dmac".into() },
            };
            schedule = schedule.before_window(window, op);
        }
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, dst),
        )
        .payload(b"engine-parity")
        .build();
        let run = |engine: Engine| {
            let mut nd = NetDebug::deploy(&Backend::reference(), corpus::L2_SWITCH).unwrap();
            nd.set_engine(engine);
            nd.set_shards(shards);
            let spec = StreamSpec::simple(
                1,
                template.clone(),
                3 * NetDebug::STREAM_WINDOW,
                Expectation::Any,
            );
            nd.run_stream_churn(&spec, &schedule).unwrap();
            nd.checker().streams()[&1].clone()
        };
        prop_assert_eq!(
            &run(Engine::Compiled),
            &run(Engine::Reference),
            "churned stream diverged between engines at {} shards",
            shards
        );
    }
}
