//! Property-based tests for the NetDebug core: accounting invariants of
//! the generator/checker pair and robustness of the probe machinery.

use netdebug::generator::{find_test_header, Expectation, FieldSweep, StreamSpec};
use netdebug::session::NetDebug;
use netdebug_hw::{Backend, Device};
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, PacketBuilder, TestHeader, TEST_HEADER_LEN};
use proptest::prelude::*;

fn reflector() -> NetDebug {
    NetDebug::new(Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation of packets: for every stream on every backend,
    /// sent == received + dropped + lost, and on the reflector (which never
    /// drops) the checker sees every packet exactly once, in order.
    #[test]
    fn accounting_invariant(
        count in 1u64..80,
        rate in proptest::option::of(1e5f64..1e7),
        payload_len in 0usize..64,
        port in 0u16..4,
    ) {
        let mut nd = reflector();
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(&vec![0xC3u8; payload_len])
        .build();
        let report = nd.run_session(&[StreamSpec {
            stream: 1,
            template,
            count,
            rate_pps: rate,
            as_port: port,
            sweeps: vec![],
            expect: Expectation::Forward { port: Some(port) },
        }]);
        let (_, stats) = &report.streams[0];
        prop_assert_eq!(stats.sent, count);
        prop_assert_eq!(stats.received + stats.dropped + stats.lost(), count);
        prop_assert_eq!(stats.received, count);
        prop_assert_eq!(stats.reordered, 0);
        prop_assert_eq!(stats.duplicates, 0);
        prop_assert_eq!(stats.corrupted, 0);
        prop_assert!(report.passed, "{}", report);
    }

    /// Sweeping arbitrary template bytes never breaks the test-header
    /// machinery: the checker still finds and validates every packet.
    #[test]
    fn sweeps_never_confuse_the_checker(
        count in 1u64..40,
        offset in 0usize..14,
        step in any::<u8>(),
    ) {
        let mut nd = reflector();
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(b"prop")
        .build();
        let report = nd.run_session(&[StreamSpec {
            stream: 1,
            template,
            count,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![FieldSweep { offset, step }],
            expect: Expectation::Any,
        }]);
        let (_, stats) = &report.streams[0];
        prop_assert_eq!(stats.received, count);
        prop_assert_eq!(stats.corrupted, 0);
    }

    /// find_test_header never panics and never misses a real header: when a
    /// valid header is embedded at `offset`, the scan returns some offset
    /// no later than it.
    #[test]
    fn find_test_header_finds_embedded(
        prefix in proptest::collection::vec(any::<u8>(), 0..48),
        payload in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut buf = prefix.clone();
        let hdr_at = buf.len();
        buf.resize(hdr_at + TEST_HEADER_LEN + payload.len(), 0);
        {
            let mut h = TestHeader::new_unchecked(&mut buf[hdr_at..]);
            h.set_magic();
            h.set_stream(3);
            h.set_seq(42);
            h.payload_mut().copy_from_slice(&payload);
            h.fill_payload_crc();
        }
        let found = find_test_header(&buf);
        prop_assert!(found.is_some());
        prop_assert!(found.unwrap() <= hdr_at);
    }

    /// Random garbage never panics the scanner.
    #[test]
    fn find_test_header_never_panics(data in proptest::collection::vec(any::<u8>(), 0..160)) {
        let _ = find_test_header(&data);
    }

    /// Parser-path probes are deterministic and never panic, for every
    /// corpus program.
    #[test]
    fn probes_deterministic(idx in 0usize..17) {
        let programs = corpus::corpus();
        let prog = &programs[idx % programs.len()];
        let ir = netdebug_p4::compile(prog.source).unwrap();
        let a = netdebug::probes::parser_path_probes(&ir);
        let b = netdebug::probes::parser_path_probes(&ir);
        prop_assert_eq!(a, b);
    }

    /// Indexed lookups stay shard-invariant under arbitrary
    /// `ChurnSchedule`s: every scheduled publication recompiles the
    /// exact-hash index of `l2_switch`'s dmac table between windows, and
    /// the churned stream's checker statistics must be identical at every
    /// shard count 1..=8.
    #[test]
    fn churned_index_republication_is_shard_invariant(
        raw_ops in proptest::collection::vec((0u64..3, 0u8..3, 0u8..4), 0..10),
        dst in 0u8..4,
        shards in 2usize..=8,
    ) {
        use netdebug::churn::{ChurnOp, ChurnSchedule};
        let mut schedule = ChurnSchedule::new();
        for &(window, op_sel, mac) in &raw_ops {
            let key = 0x0200_0000_0000u128 + u128::from(mac);
            let op = match op_sel {
                0 => ChurnOp::Exact {
                    table: "dmac".into(),
                    keys: vec![key],
                    action: "forward".into(),
                    args: vec![u128::from(mac % 4)],
                },
                // Removing an absent entry is a scheduled no-op; clears
                // republish the empty index.
                1 => ChurnOp::Remove {
                    table: "dmac".into(),
                    patterns: vec![netdebug_p4::ir::IrPattern::Value(key)],
                    priority: 0,
                },
                _ => ChurnOp::Clear { table: "dmac".into() },
            };
            schedule = schedule.before_window(window, op);
        }
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, dst),
        )
        .payload(b"churned-index")
        .build();
        let run = |shards: usize| {
            let mut nd = NetDebug::deploy(&Backend::reference(), corpus::L2_SWITCH).unwrap();
            nd.set_shards(shards);
            let spec = StreamSpec::simple(
                1,
                template.clone(),
                3 * NetDebug::STREAM_WINDOW,
                Expectation::Any,
            );
            nd.run_stream_churn(&spec, &schedule).unwrap();
            nd.checker().streams()[&1].clone()
        };
        let sequential = run(1);
        prop_assert_eq!(
            &sequential,
            &run(shards),
            "churned exact-index stream diverged at {} shards",
            shards
        );
    }

    /// Engine parity end to end: a whole NetDebug session — generator,
    /// device taps, checker — driven over an arbitrary `ChurnSchedule`
    /// produces identical checker statistics whether the device's data
    /// plane runs the flat compiled engine (the default) or the
    /// tree-walking reference oracle, at any shard count. This is the
    /// fleet/churn-driver face of the parity obligation the dataplane
    /// proptests pin packet by packet.
    #[test]
    fn churned_streams_identical_across_engines(
        raw_ops in proptest::collection::vec((0u64..3, 0u8..3, 0u8..4), 0..10),
        dst in 0u8..4,
        shards in 1usize..=4,
    ) {
        use netdebug::churn::{ChurnOp, ChurnSchedule};
        use netdebug_dataplane::Engine;
        let mut schedule = ChurnSchedule::new();
        for &(window, op_sel, mac) in &raw_ops {
            let key = 0x0200_0000_0000u128 + u128::from(mac);
            let op = match op_sel {
                0 => ChurnOp::Exact {
                    table: "dmac".into(),
                    keys: vec![key],
                    action: "forward".into(),
                    args: vec![u128::from(mac % 4)],
                },
                1 => ChurnOp::Remove {
                    table: "dmac".into(),
                    patterns: vec![netdebug_p4::ir::IrPattern::Value(key)],
                    priority: 0,
                },
                _ => ChurnOp::Clear { table: "dmac".into() },
            };
            schedule = schedule.before_window(window, op);
        }
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, dst),
        )
        .payload(b"engine-parity")
        .build();
        let run = |engine: Engine| {
            let mut nd = NetDebug::deploy(&Backend::reference(), corpus::L2_SWITCH).unwrap();
            nd.set_engine(engine);
            nd.set_shards(shards);
            let spec = StreamSpec::simple(
                1,
                template.clone(),
                3 * NetDebug::STREAM_WINDOW,
                Expectation::Any,
            );
            nd.run_stream_churn(&spec, &schedule).unwrap();
            nd.checker().streams()[&1].clone()
        };
        prop_assert_eq!(
            &run(Engine::Compiled),
            &run(Engine::Reference),
            "churned stream diverged between engines at {} shards",
            shards
        );
    }

    /// Flow-cache parity under churn: the same session driven over an
    /// arbitrary `ChurnSchedule` — whose publications land *between*
    /// traffic windows and must invalidate the resident cache entries by
    /// generation, never flush-by-hand — produces identical checker
    /// statistics with the memoized fast path on (the default), off, and
    /// on the tree-walking reference oracle. The template repeats every
    /// window, so the cached run genuinely replays hits across every
    /// republication boundary.
    #[test]
    fn churned_streams_identical_with_flow_cache(
        raw_ops in proptest::collection::vec((0u64..3, 0u8..3, 0u8..4), 0..10),
        dst in 0u8..4,
        shards in 1usize..=4,
    ) {
        use netdebug::churn::{ChurnOp, ChurnSchedule};
        use netdebug_dataplane::Engine;
        let mut schedule = ChurnSchedule::new();
        for &(window, op_sel, mac) in &raw_ops {
            let key = 0x0200_0000_0000u128 + u128::from(mac);
            let op = match op_sel {
                0 => ChurnOp::Exact {
                    table: "dmac".into(),
                    keys: vec![key],
                    action: "forward".into(),
                    args: vec![u128::from(mac % 4)],
                },
                1 => ChurnOp::Remove {
                    table: "dmac".into(),
                    patterns: vec![netdebug_p4::ir::IrPattern::Value(key)],
                    priority: 0,
                },
                _ => ChurnOp::Clear { table: "dmac".into() },
            };
            schedule = schedule.before_window(window, op);
        }
        let template = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, dst),
        )
        .payload(b"cache-parity")
        .build();
        // `cache`: Some(on/off) runs the compiled engine with the flow
        // cache toggled; None runs the unmemoized reference oracle.
        let run = |cache: Option<bool>| {
            let mut nd = NetDebug::deploy(&Backend::reference(), corpus::L2_SWITCH).unwrap();
            match cache {
                Some(on) => nd.device_mut().set_flow_cache(on),
                None => nd.set_engine(Engine::Reference),
            }
            nd.set_shards(shards);
            let spec = StreamSpec::simple(
                1,
                template.clone(),
                3 * NetDebug::STREAM_WINDOW,
                Expectation::Any,
            );
            nd.run_stream_churn(&spec, &schedule).unwrap();
            nd.checker().streams()[&1].clone()
        };
        let cached = run(Some(true));
        prop_assert_eq!(
            &cached,
            &run(Some(false)),
            "churned stream diverged cache-on vs cache-off at {} shards",
            shards
        );
        prop_assert_eq!(
            &cached,
            &run(None),
            "churned stream diverged cache-on vs reference at {} shards",
            shards
        );
    }
}

fn router(backend: &Backend) -> Device {
    let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
    dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    dev
}

fn router_frame(version: u8) -> Vec<u8> {
    use netdebug_packet::Ipv4Address;
    let mut f = PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
    .udp(1, 2)
    .build();
    f[14] = (version << 4) | 5;
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The event-loop fleet runtime is bit-identical to the sequential
    /// one-device-at-a-time reference: for arbitrary pacing gaps,
    /// generated `ChurnSchedule`s and worker counts 1..=4, every member's
    /// clock, taps, drop counters and port stats after `run_churn` match a
    /// per-packet advance-then-inject loop over the same windows, and the
    /// fleet report is byte-identical to the single-worker run.
    #[test]
    fn event_loop_fleet_matches_sequential_reference(
        raw_ops in proptest::collection::vec((0u64..6, 0u8..3, 0u8..4), 0..8),
        count in 1u64..48,
        rate in proptest::option::of(1e5f64..1e7),
        window in 1u64..12,
        workers in 2usize..=4,
    ) {
        use netdebug::churn::{ChurnOp, ChurnSchedule};
        use netdebug::generator::Generator;
        use netdebug::DifferentialFleet;

        let windows_total = count.div_ceil(window);
        let mut schedule = ChurnSchedule::new();
        for &(w, op_sel, octet) in &raw_ops {
            let op = match op_sel {
                0 => ChurnOp::Lpm {
                    table: "ipv4_lpm".into(),
                    prefix: 0x0A00_0000 + (u128::from(octet) << 8),
                    prefix_len: 24,
                    action: "ipv4_forward".into(),
                    args: vec![0xBB, u128::from(octet % 4)],
                },
                1 => ChurnOp::Clear { table: "ipv4_lpm".into() },
                _ => ChurnOp::Lpm {
                    table: "ipv4_lpm".into(),
                    prefix: 0x0A00_0000,
                    prefix_len: 8,
                    action: "ipv4_forward".into(),
                    args: vec![0xAA, 1],
                },
            };
            schedule = schedule.before_window(w % windows_total, op);
        }
        let spec = StreamSpec {
            stream: 7,
            template: router_frame(4),
            count,
            rate_pps: rate,
            as_port: 1,
            sweeps: vec![],
            expect: Expectation::Any,
        };
        let labels = ["reference", "sdnet-fixed", "sdnet-2018"];
        let backends = [Backend::reference(), Backend::sdnet_fixed(), Backend::sdnet_2018()];

        let build_fleet = || {
            let mut fleet = DifferentialFleet::new();
            for (label, backend) in labels.iter().zip(&backends) {
                fleet.add(*label, router(backend));
            }
            fleet
        };
        let mut fleet = build_fleet();
        fleet.set_runtime_workers(workers);
        let report = fleet.run_churn(&spec, &schedule, window).unwrap();

        let mut solo = build_fleet();
        solo.set_runtime_workers(1);
        let baseline = solo.run_churn(&spec, &schedule, window).unwrap();
        prop_assert_eq!(&report, &baseline, "report diverged at {} workers", workers);

        // Sequential reference: one device at a time, one packet at a time,
        // the pre-runtime execution order.
        let gap = Generator::gap_cycles(&spec, router(&backends[0]).config().core_clock_hz);
        for (label, backend) in labels.iter().zip(&backends) {
            let mut dev = router(backend);
            let mut generator = Generator::new();
            let (mut seq, mut w) = (0u64, 0u64);
            while seq < count {
                let n = window.min(count - seq);
                let win = generator.build_batch(&spec, seq, n, 0, gap);
                schedule.apply_for_window(w, &mut dev).unwrap();
                for p in &win {
                    if gap > 0 {
                        dev.advance(gap);
                    }
                    dev.inject(spec.as_port, &p.data);
                }
                seq += n;
                w += 1;
            }
            let fleet_dev = fleet.device_mut(label).unwrap();
            prop_assert_eq!(fleet_dev.now(), dev.now(), "{}: clock diverged", label);
            prop_assert_eq!(fleet_dev.stage_counts(), dev.stage_counts(), "{}: taps diverged", label);
            prop_assert_eq!(fleet_dev.drop_counts(), dev.drop_counts(), "{}: drops diverged", label);
            for port in 0..4u16 {
                prop_assert_eq!(
                    fleet_dev.port_stats(port),
                    dev.port_stats(port),
                    "{}: port {} stats diverged",
                    label,
                    port
                );
            }
        }
    }

    /// `drive_device` with many interleaved flows is bit-identical to the
    /// flat sorted schedule: inject every frame singly in
    /// (virtual time, flow id, seq) order on a twin device and the
    /// per-packet verdicts, clock and taps must match exactly, for any
    /// `max_batch` and any mix of paced and back-to-back flows.
    #[test]
    fn multi_flow_drive_matches_sorted_reference(
        flows_raw in proptest::collection::vec((0u64..40, 0u64..120, 1u64..16), 1..5),
        max_batch in 1usize..32,
    ) {
        use netdebug::generator::Generator;
        use netdebug::runtime::{drive_device, DeviceSink, FlowRun};
        use netdebug_hw::{Outcome, Processed};
        use std::sync::Arc;

        struct Rec(Vec<(u32, u64, Outcome, String)>);
        impl DeviceSink for Rec {
            fn on_packet(&mut self, flow: u32, seq: u64, p: Processed) {
                self.0.push((flow, seq, p.outcome, p.last_stage));
            }
        }

        let mut generator = Generator::new();
        let flows: Vec<FlowRun> = flows_raw
            .iter()
            .enumerate()
            .map(|(i, &(origin, gap, n))| {
                let spec = StreamSpec {
                    stream: i as u16,
                    template: router_frame(if i % 3 == 2 { 5 } else { 4 }),
                    count: n,
                    rate_pps: None,
                    as_port: (i % 4) as u16,
                    sweeps: vec![],
                    expect: Expectation::Any,
                };
                FlowRun {
                    id: i as u32,
                    as_port: spec.as_port,
                    frames: Arc::new(generator.build_batch(&spec, 0, n, 0, gap)),
                    origin,
                    gap,
                    triggers: vec![],
                }
            })
            .collect();

        let mut driven = router(&Backend::reference());
        let mut sink = Rec(Vec::new());
        let (stats, result) = drive_device(&mut driven, &flows, max_batch, &mut sink);
        prop_assert!(result.is_ok());
        let total: usize = flows.iter().map(|f| f.frames.len()).sum();
        prop_assert_eq!(stats.packets as usize, total);

        // Twin device: flat (due, flow, seq)-sorted schedule, one inject
        // per event, clock advanced to each due instant.
        let mut events: Vec<(u64, u32, u64)> = flows
            .iter()
            .flat_map(|f| (0..f.frames.len() as u64).map(|k| (f.due(k), f.id, k)))
            .collect();
        events.sort_unstable();
        let mut twin = router(&Backend::reference());
        let mut expected = Vec::with_capacity(total);
        for &(due, id, k) in &events {
            if due > twin.now() {
                let delta = due - twin.now();
                twin.advance(delta);
            }
            let f = &flows[id as usize];
            let p = twin.inject(f.as_port, &f.frames[k as usize].data);
            expected.push((id, k, p.outcome, p.last_stage));
        }
        prop_assert_eq!(sink.0, expected);
        prop_assert_eq!(driven.now(), twin.now());
        prop_assert_eq!(driven.stage_counts(), twin.stage_counts());
        prop_assert_eq!(driven.drop_counts(), twin.drop_counts());
        for port in 0..4u16 {
            prop_assert_eq!(driven.port_stats(port), twin.port_stats(port));
        }
    }

    /// Quarantine-rejoin invariant: a member that crashes (or silently
    /// stalls) mid-run and is recovered through checkpoint/restore ends
    /// with a per-frame observation stream **bit-identical** to its own
    /// fault-free run — same outcomes, stages and completion cycles —
    /// except the skipped culprit frame, which surfaces as a `Faulted`
    /// drop. Holds for every worker count 1..=4 and every checkpoint
    /// interval 1..=64, and healthy members are never perturbed.
    #[test]
    fn recovered_member_matches_fault_free_except_culprit(
        culprit_raw in 0u64..48,
        stall in any::<bool>(),
        count in 8u64..48,
        workers in 1usize..=4,
        interval in 1u64..=64,
    ) {
        use netdebug::generator::Generator;
        use netdebug::{DeviceSink, DeviceTask, FleetRuntime, FlowRun, RecoveryPolicy};
        use netdebug_hw::{FaultSpec, Processed};
        use std::sync::Arc;

        struct Rec(Vec<(u32, u64, String, String, u64)>);
        impl DeviceSink for Rec {
            fn on_packet(&mut self, flow: u32, seq: u64, p: Processed) {
                self.0.push((
                    flow,
                    seq,
                    format!("{:?}", p.outcome),
                    p.last_stage,
                    p.done_at_cycle,
                ));
            }
        }

        let culprit_at = culprit_raw % count;
        let spec = StreamSpec {
            stream: 7,
            template: router_frame(4),
            count,
            rate_pps: None,
            as_port: 1,
            sweeps: vec![],
            expect: Expectation::Any,
        };
        let frames = Arc::new(Generator::new().build_batch(&spec, 0, count, 0, 0));
        let fault = if stall {
            FaultSpec::Stall { after: culprit_at }
        } else {
            FaultSpec::PanicAfterN { n: culprit_at }
        };
        let build_tasks = |armed: bool| -> Vec<DeviceTask<Rec>> {
            (0..4usize)
                .map(|i| {
                    let mut dev = router(&Backend::reference());
                    if armed && i == 2 {
                        dev.arm_fault(fault);
                    }
                    DeviceTask {
                        device: dev,
                        flows: vec![FlowRun::new(7, 1, Arc::clone(&frames))],
                        sink: Rec(Vec::new()),
                    }
                })
                .collect()
        };
        let policy = RecoveryPolicy {
            checkpoint_interval: interval,
            ..RecoveryPolicy::default()
        };
        let mut rt = FleetRuntime::new(workers);
        rt.set_recovery(Some(policy));
        let seeded = rt.run(build_tasks(true));
        let mut rt_clean = FleetRuntime::new(workers);
        rt_clean.set_recovery(Some(policy));
        let clean = rt_clean.run(build_tasks(false));
        for (i, (s, c)) in seeded.iter().zip(&clean).enumerate() {
            prop_assert!(s.fault.is_none(), "device {} quarantined: {:?}", i, s.fault);
            prop_assert_eq!(s.sink.0.len(), count as usize, "device {} short", i);
            if i == 2 {
                prop_assert_eq!(s.recoveries.len(), 1);
                let r = &s.recoveries[0];
                prop_assert_eq!(r.culprit.as_ref().unwrap().seq, culprit_at);
                prop_assert!(
                    r.frames_replayed <= interval,
                    "bounded replay: {} frames for interval {}",
                    r.frames_replayed,
                    interval
                );
                for (k, (a, b)) in s.sink.0.iter().zip(&c.sink.0).enumerate() {
                    if k as u64 == culprit_at {
                        prop_assert_eq!(a.1, b.1, "culprit keeps its seq");
                        prop_assert!(
                            a.2.contains("Faulted"),
                            "culprit must surface as a Faulted drop, got {}",
                            a.2
                        );
                    } else {
                        prop_assert_eq!(a, b, "recovered member diverged at frame {}", k);
                    }
                }
            } else {
                prop_assert!(s.recoveries.is_empty(), "healthy device {} recovered", i);
                prop_assert_eq!(&s.sink.0, &c.sink.0, "healthy device {} perturbed", i);
            }
        }
    }

    /// Fault isolation invariant: seed `k` devices of an 8-member fleet
    /// with crash-class faults and every **healthy** device's observation
    /// digest (FNV over flow, seq, outcome, last stage, completion cycle)
    /// is bit-identical to the same fleet run entirely fault-free — for
    /// every worker count 1..=4 and every fault kind. The faulted devices
    /// are quarantined with a `DeviceFault` record, never by unwinding
    /// the caller.
    #[test]
    fn faulty_members_never_perturb_healthy_digests(
        faulty_raw in proptest::collection::vec(0usize..8, 1..=3),
        fault_sel in 0u8..4,
        seed in any::<u64>(),
        count in 8u64..48,
        workers in 1usize..=4,
    ) {
        use netdebug::generator::Generator;
        use netdebug::{DeviceSink, DeviceTask, FleetRuntime, FlowRun};
        use netdebug_hw::{FaultSpec, Processed};
        use std::collections::BTreeSet;
        use std::sync::Arc;

        let faulty_positions: BTreeSet<usize> = faulty_raw.iter().copied().collect();

        #[derive(Default)]
        struct DigestSink(u64);
        impl DigestSink {
            fn mix(&mut self, bytes: &[u8]) {
                let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
                for &b in bytes {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                self.0 = h;
            }
        }
        impl DeviceSink for DigestSink {
            fn on_packet(&mut self, flow: u32, seq: u64, p: Processed) {
                self.mix(&flow.to_le_bytes());
                self.mix(&seq.to_le_bytes());
                self.mix(format!("{:?}", p.outcome).as_bytes());
                self.mix(p.last_stage.as_bytes());
                self.mix(&p.done_at_cycle.to_le_bytes());
            }
        }

        let spec = StreamSpec {
            stream: 7,
            template: router_frame(4),
            count,
            rate_pps: None,
            as_port: 1,
            sweeps: vec![],
            expect: Expectation::Any,
        };
        let frames = Arc::new(Generator::new().build_batch(&spec, 0, count, 0, 0));
        let fault = match fault_sel {
            0 => FaultSpec::PanicAfterN { n: seed % count },
            1 => FaultSpec::PanicOnPort { port: 1 },
            2 => FaultSpec::WedgeParser { after: seed % count, budget_cycles: 10_000 },
            _ => FaultSpec::SeededFlaky { seed, rate_ppm: 250_000 },
        };
        let backends = [Backend::reference(), Backend::sdnet_fixed(), Backend::sdnet_2018()];
        let build_tasks = |armed: bool| -> Vec<DeviceTask<DigestSink>> {
            (0..8usize)
                .map(|i| {
                    let mut dev = router(&backends[i % 3]);
                    if armed && faulty_positions.contains(&i) {
                        dev.arm_fault(fault);
                    }
                    DeviceTask {
                        device: dev,
                        flows: vec![FlowRun::new(7, 1, Arc::clone(&frames))],
                        sink: DigestSink::default(),
                    }
                })
                .collect()
        };

        let mut rt = FleetRuntime::new(workers);
        let seeded = rt.run(build_tasks(true));
        let mut rt_clean = FleetRuntime::new(workers);
        let clean = rt_clean.run(build_tasks(false));
        prop_assert_eq!(seeded.len(), 8);
        for (i, (s, c)) in seeded.iter().zip(&clean).enumerate() {
            prop_assert!(c.fault.is_none(), "fault-free run faulted at {}", i);
            if faulty_positions.contains(&i) {
                // SeededFlaky may legitimately never trip at this rate;
                // every other kind is deterministic and must.
                if fault_sel < 3 {
                    prop_assert!(s.fault.is_some(), "device {} should have tripped", i);
                }
                if let Some(f) = &s.fault {
                    let expected = format!("device-{i}");
                    prop_assert_eq!(f.member.as_str(), expected.as_str());
                }
            } else {
                prop_assert!(s.fault.is_none(), "healthy device {} faulted", i);
                prop_assert_eq!(
                    s.sink.0, c.sink.0,
                    "healthy device {} digest perturbed by faulty peers", i
                );
            }
        }
    }
}
