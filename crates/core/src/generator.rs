//! The test packet generator.
//!
//! One of NetDebug's two in-device hardware modules (Figure 1). It is
//! programmable from the host over the register interface: the software
//! controller writes *stream* descriptors — a template frame, a count, a
//! rate, field sweeps — and the generator emits packets **directly into the
//! data plane under test**, bypassing the front-panel MACs, impersonating
//! any ingress port.
//!
//! Every generated frame carries a [`netdebug_packet::TestHeader`] in its
//! payload area: magic, stream id, sequence number, an injection timestamp
//! in device cycles, and a payload CRC. The output checker keys on this
//! header to account for loss, reordering, duplication, corruption and
//! per-packet latency without host involvement.

use netdebug_packet::testhdr::{self, TEST_HEADER_LEN};
use netdebug_packet::TestHeader;
use serde::{Deserialize, Serialize};

/// What the stream's packets are expected to do in the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// Packets must leave the device; if `port` is given, on that port.
    Forward {
        /// Required egress port, when exact.
        port: Option<u16>,
    },
    /// Packets must be dropped by the data plane; any output is a failure.
    Drop,
    /// No expectation (pure load generation).
    Any,
}

/// A byte-offset sweep applied across the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSweep {
    /// Byte offset into the template.
    pub offset: usize,
    /// Added per packet (wrapping).
    pub step: u8,
}

/// A programmable packet stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Stream identifier (appears in every test header).
    pub stream: u16,
    /// Template frame (headers the program under test will parse).
    pub template: Vec<u8>,
    /// Number of packets.
    pub count: u64,
    /// Injection rate in packets per second; `None` = back-to-back.
    pub rate_pps: Option<f64>,
    /// Ingress port to impersonate.
    pub as_port: u16,
    /// Per-packet field sweeps.
    pub sweeps: Vec<FieldSweep>,
    /// Expected data-plane behaviour.
    pub expect: Expectation,
}

impl StreamSpec {
    /// A back-to-back stream with no sweeps.
    pub fn simple(stream: u16, template: Vec<u8>, count: u64, expect: Expectation) -> Self {
        StreamSpec {
            stream,
            template,
            count,
            rate_pps: None,
            as_port: 0,
            sweeps: Vec::new(),
            expect,
        }
    }
}

/// The generator: expands a [`StreamSpec`] into stamped frames.
#[derive(Debug, Clone, Default)]
pub struct Generator {
    emitted: u64,
}

/// One generated frame, ready for injection.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedPacket {
    /// Frame bytes (template + test header + CRC).
    pub data: Vec<u8>,
    /// Stream id.
    pub stream: u16,
    /// Sequence number within the stream.
    pub seq: u64,
    /// Injection timestamp (device cycles) stamped into the header.
    pub ts_cycles: u64,
}

impl Generator {
    /// Create a generator.
    pub fn new() -> Self {
        Generator::default()
    }

    /// Total frames emitted since construction.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Build the `seq`-th frame of a stream, stamped at `now_cycles`.
    ///
    /// The test header (28 bytes) is appended after the template so the
    /// program under test parses the template exactly as it would parse
    /// live traffic, while the header rides in the payload region.
    pub fn build(&mut self, spec: &StreamSpec, seq: u64, now_cycles: u64) -> GeneratedPacket {
        let mut template = spec.template.clone();
        for sweep in &spec.sweeps {
            if sweep.offset < template.len() {
                template[sweep.offset] =
                    template[sweep.offset].wrapping_add(sweep.step.wrapping_mul(seq as u8));
            }
        }
        let flags = match spec.expect {
            Expectation::Drop => testhdr::FLAG_EXPECT_DROP,
            _ => 0,
        } | if seq + 1 == spec.count {
            testhdr::FLAG_LAST
        } else {
            0
        };

        let mut data = Vec::with_capacity(template.len() + TEST_HEADER_LEN);
        data.extend_from_slice(&template);
        let hdr_start = data.len();
        data.resize(hdr_start + TEST_HEADER_LEN, 0);
        {
            let mut h = TestHeader::new_unchecked(&mut data[hdr_start..]);
            h.set_magic();
            h.set_stream(spec.stream);
            h.set_flags(flags);
            h.set_seq(seq);
            h.set_ts_cycles(now_cycles);
            h.fill_payload_crc();
        }
        self.emitted += 1;
        GeneratedPacket {
            data,
            stream: spec.stream,
            seq,
            ts_cycles: now_cycles,
        }
    }

    /// Build a whole window of a stream's frames in one call: sequence
    /// numbers `first_seq .. first_seq + n`.
    ///
    /// Timestamps follow the injection schedule [`run_stream`] uses: the
    /// device clock advances by one inter-packet gap *before* each
    /// injection, so packet `k` of the window is stamped
    /// `start_cycles + gap_cycles * (k + 1)` (which degenerates to
    /// `start_cycles` for back-to-back streams). A batched window is
    /// therefore byte-identical to generating the same packets one at a
    /// time against a live device clock.
    ///
    /// [`run_stream`]: ../session/struct.NetDebug.html#method.run_stream
    pub fn build_batch(
        &mut self,
        spec: &StreamSpec,
        first_seq: u64,
        n: u64,
        start_cycles: u64,
        gap_cycles: u64,
    ) -> Vec<GeneratedPacket> {
        (0..n)
            .map(|k| self.build(spec, first_seq + k, start_cycles + gap_cycles * (k + 1)))
            .collect()
    }

    /// Inter-packet gap for a stream at a given core clock, in cycles.
    pub fn gap_cycles(spec: &StreamSpec, clock_hz: f64) -> u64 {
        match spec.rate_pps {
            Some(pps) if pps > 0.0 => (clock_hz / pps).round() as u64,
            _ => 0,
        }
    }
}

/// Find a test header inside (possibly rewritten) output bytes.
///
/// The data plane may have added or removed headers in front of the
/// payload, so the checker scans for the magic. Returns the byte offset of
/// the header.
pub fn find_test_header(data: &[u8]) -> Option<usize> {
    if data.len() < TEST_HEADER_LEN {
        return None;
    }
    (0..=data.len() - TEST_HEADER_LEN).find(|&off| TestHeader::new_checked(&data[off..]).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StreamSpec {
        StreamSpec {
            stream: 7,
            template: vec![0xAA; 20],
            count: 3,
            rate_pps: Some(1_000_000.0),
            as_port: 2,
            sweeps: vec![FieldSweep { offset: 4, step: 1 }],
            expect: Expectation::Drop,
        }
    }

    #[test]
    fn frames_are_stamped_and_swept() {
        let mut g = Generator::new();
        let p0 = g.build(&spec(), 0, 100);
        let p1 = g.build(&spec(), 1, 200);
        let p2 = g.build(&spec(), 2, 300);
        assert_eq!(g.emitted(), 3);
        assert_eq!(p0.data.len(), 20 + TEST_HEADER_LEN);

        // Sweep applied to byte 4.
        assert_eq!(p0.data[4], 0xAA);
        assert_eq!(p1.data[4], 0xAB);
        assert_eq!(p2.data[4], 0xAC);

        // Headers parse and carry the right metadata.
        let off = find_test_header(&p1.data).unwrap();
        assert_eq!(off, 20);
        let h = TestHeader::new_checked(&p1.data[off..]).unwrap();
        assert_eq!(h.stream(), 7);
        assert_eq!(h.seq(), 1);
        assert_eq!(h.ts_cycles(), 200);
        assert_eq!(
            h.flags() & testhdr::FLAG_EXPECT_DROP,
            testhdr::FLAG_EXPECT_DROP
        );
        assert_eq!(h.flags() & testhdr::FLAG_LAST, 0);
        assert!(h.verify_payload());

        // Last frame flagged.
        let off = find_test_header(&p2.data).unwrap();
        let h = TestHeader::new_checked(&p2.data[off..]).unwrap();
        assert_eq!(h.flags() & testhdr::FLAG_LAST, testhdr::FLAG_LAST);
    }

    #[test]
    fn gap_cycles_from_rate() {
        // 200 MHz clock, 1 Mpps -> 200 cycles between packets.
        assert_eq!(Generator::gap_cycles(&spec(), 200e6), 200);
        let mut s = spec();
        s.rate_pps = None;
        assert_eq!(Generator::gap_cycles(&s, 200e6), 0);
    }

    #[test]
    fn header_found_after_prefix_changes() {
        let mut g = Generator::new();
        let p = g.build(&spec(), 0, 0);
        // Simulate encapsulation: 4 bytes prepended.
        let mut shifted = vec![0x11, 0x22, 0x33, 0x44];
        shifted.extend_from_slice(&p.data);
        assert_eq!(find_test_header(&shifted), Some(24));
        // Simulate decapsulation: 6 bytes stripped.
        assert_eq!(find_test_header(&p.data[6..]), Some(14));
        // Absent in unrelated bytes.
        assert_eq!(find_test_header(&[0u8; 64]), None);
    }
}
