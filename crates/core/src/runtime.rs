//! The virtual-time event-loop fleet runtime.
//!
//! Every [`netdebug_hw::Device`] keeps its own virtual clock, and before
//! this module each paced stream serialised packet-at-a-time on that
//! clock while `DifferentialFleet` burned one OS thread per device per
//! window. The runtime replaces both with an **event loop over virtual
//! device cycles**: each device owns a hierarchical timer wheel holding
//! one entry per active flow, the loop pops the earliest pending virtual
//! instant, coalesces *every* injection due at that instant into one
//! batch-engine dispatch ([`netdebug_hw::Device::inject_batch_at`]), and
//! a small fixed pool of persistent workers ([`FleetRuntime`]) multiplexes
//! hundreds of devices — tens of thousands of paced flows — onto a few OS
//! threads.
//!
//! ## Determinism contract
//!
//! Runs are **bit-reproducible regardless of worker count**. Devices are
//! independent, so cross-device parallelism cannot reorder anything a
//! device observes; within a device the loop fixes a total order:
//! virtual time first, then flow (declaration order), then sequence
//! number. Results are joined in task (device) order, so verdicts, taps,
//! stats and drop counters from a 4-worker run are byte-identical to the
//! 1-worker (fully inline) run — property-tested against the sequential
//! one-device-at-a-time reference in `tests/prop.rs`.
//!
//! ## Churn epochs in virtual time
//!
//! A [`FlowRun`] carries churn triggers keyed to sequence numbers: when
//! the loop reaches trigger seq `s` it flushes every frame already
//! emitted, applies the scheduled [`ChurnOp`]s (atomic epoch
//! publications), and only then dispatches `s` — so churn epochs land at
//! scheduled virtual times across the whole fleet, identically on every
//! member and at every worker count.

use crate::churn::ChurnOp;
use crate::generator::GeneratedPacket;
use netdebug_dataplane::ControlError;
use netdebug_hw::{Device, FaultPanic, Processed};
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default coalesced-dispatch cap: the event loop flushes its pending
/// frames to the device at least this often, matching the historical
/// 256-packet stream window so batch-engine arena sizes stay bounded.
pub const DEFAULT_MAX_BATCH: usize = 256;

/// One paced (or back-to-back) stream of pre-built frames aimed at a
/// device, plus the churn triggers scheduled against it.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// Caller-chosen flow label, handed back to the [`DeviceSink`] with
    /// every packet (it does not affect scheduling order — flows fire in
    /// declaration order within an instant).
    pub id: u32,
    /// Ingress port every frame of this flow impersonates.
    pub as_port: u16,
    /// The frames, in sequence order. Shared so a fleet can aim one
    /// generated stimulus at hundreds of devices without copying it.
    pub frames: Arc<Vec<GeneratedPacket>>,
    /// Virtual-cycle origin: with `gap > 0`, frame `k` is due at
    /// `origin + gap * (k + 1)` — exactly the clock the historical
    /// advance-then-inject loop produced; with `gap == 0` every frame is
    /// due at `origin` (back-to-back).
    pub origin: u64,
    /// Inter-packet gap in device cycles (0 = back-to-back).
    pub gap: u64,
    /// Churn triggers: `(seq, op)` pairs, sorted by seq. Ops for seq `s`
    /// publish after frame `s - 1` is dispatched and before frame `s` is.
    pub triggers: Vec<(u64, ChurnOp)>,
}

impl FlowRun {
    /// A plain flow: no pacing gap means every frame is due at `origin`.
    pub fn new(id: u32, as_port: u16, frames: Arc<Vec<GeneratedPacket>>) -> Self {
        FlowRun {
            id,
            as_port,
            frames,
            origin: 0,
            gap: 0,
            triggers: Vec::new(),
        }
    }

    /// The virtual cycle frame `seq` is due at.
    pub fn due(&self, seq: u64) -> u64 {
        if self.gap == 0 {
            self.origin
        } else {
            self.origin + self.gap * (seq + 1)
        }
    }
}

/// Consumer of a device's processed packets, called in the runtime's
/// deterministic order (virtual time, then flow, then seq).
pub trait DeviceSink {
    /// One packet of `flow` (the [`FlowRun::id`]) finished processing.
    fn on_packet(&mut self, flow: u32, seq: u64, p: Processed);
}

/// Observability counters for one event-loop run (or, via
/// [`FleetRuntime::stats`], accumulated across a whole fleet). These sit
/// alongside the existing `sharded_batches`/`pool_workers` counters one
/// layer down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Distinct virtual instants the loop dispatched at.
    pub instants: u64,
    /// Packets emitted through the event loop.
    pub packets: u64,
    /// Coalesced dispatches into the device (each one batch-engine call
    /// chain via `inject_batch_at`).
    pub dispatches: u64,
    /// Largest number of flows ready at one virtual instant (ready-queue
    /// depth).
    pub max_ready_depth: u64,
    /// Largest coalesced dispatch, in frames.
    pub max_batch: u64,
    /// Timer-wheel cascades (an upper-level slot drained and re-filed).
    pub wheel_cascades: u64,
    /// Device flow-cache hits over the run (memoized fast-path replays —
    /// see `netdebug_dataplane::Dataplane::cache_stats`).
    pub cache_hits: u64,
    /// Device flow-cache misses over the run.
    pub cache_misses: u64,
    /// Device flow-cache invalidations (epoch bumps that dropped a
    /// non-empty cache) over the run — churn triggers show up here.
    pub cache_invalidations: u64,
    /// Devices quarantined by the guarded driver (a crash-class fault or
    /// genuine panic caught mid-run; see [`DeviceFault`]). With recovery
    /// enabled this counts trips, recovered or not.
    pub faults: u64,
    /// Successful checkpoint/restore rejoins (see [`DeviceRecovery`]):
    /// each one is a trip that did **not** cost the run a device.
    pub recoveries: u64,
}

impl RuntimeStats {
    /// Fold another run's counters into this one (sums, maxima for the
    /// depth/batch watermarks).
    pub fn absorb(&mut self, other: &RuntimeStats) {
        self.instants += other.instants;
        self.packets += other.packets;
        self.dispatches += other.dispatches;
        self.max_ready_depth = self.max_ready_depth.max(other.max_ready_depth);
        self.max_batch = self.max_batch.max(other.max_batch);
        self.wheel_cascades += other.wheel_cascades;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.faults += other.faults;
        self.recoveries += other.recoveries;
    }

    /// Mean frames per coalesced dispatch.
    pub fn mean_batch(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.packets as f64 / self.dispatches as f64
        }
    }
}

// ---------------------------------------------------------------------
// Hierarchical timer wheel
// ---------------------------------------------------------------------

const WHEEL_BITS: u32 = 8;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
const WHEEL_LEVELS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    due: u64,
    flow: u32,
}

/// A 4-level × 256-slot hierarchical timer wheel over virtual device
/// cycles. Level 0 is cycle-granular; each level up covers 256× the span
/// below it; anything further than `2^32` cycles out waits in an overflow
/// list. `pop_next` returns all entries due at the earliest pending
/// instant, cascading upper-level slots down only when the near wheel is
/// empty — entries never sit more than one cascade away from exact
/// placement because the clock jumps straight to the next due instant.
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    overflow: Vec<TimerEntry>,
    now: u64,
    pending: usize,
    cascades: u64,
}

impl TimerWheel {
    fn new(now: u64) -> Self {
        TimerWheel {
            slots: (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| Vec::new())
                .collect(),
            overflow: Vec::new(),
            now,
            pending: 0,
            cascades: 0,
        }
    }

    /// File `flow` to fire at `due` (clamped to `now`: virtual time never
    /// runs backwards).
    fn schedule(&mut self, due: u64, flow: u32) {
        let due = due.max(self.now);
        self.pending += 1;
        let delta = due - self.now;
        let entry = TimerEntry { due, flow };
        for level in 0..WHEEL_LEVELS {
            let span_bits = WHEEL_BITS * (level as u32 + 1);
            if delta < (1u64 << span_bits) {
                let slot =
                    ((due >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
                self.slots[level * WHEEL_SLOTS + slot].push(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Pop every entry due at the earliest pending instant into `out`
    /// (sorted by flow), advancing `now` to that instant. Returns the
    /// instant, or `None` when nothing is pending.
    fn pop_next(&mut self, out: &mut Vec<TimerEntry>) -> Option<u64> {
        out.clear();
        if self.pending == 0 {
            return None;
        }
        loop {
            // Near wheel: level 0 holds at most the next 256 cycles, and
            // every entry in slot (now + i) & 255 is due exactly at
            // now + i — the first non-empty slot in time order is the
            // near minimum. (It is NOT necessarily the global minimum:
            // an upper-level entry filed long ago can be due sooner.)
            let mut near: Option<u64> = None;
            for i in 0..WHEEL_SLOTS as u64 {
                let t = self.now + i;
                let slot = (t & (WHEEL_SLOTS as u64 - 1)) as usize;
                if !self.slots[slot].is_empty() {
                    near = Some(t);
                    break;
                }
            }
            // Far wheels: find the earliest pending due across the upper
            // levels and the overflow list. Within a level, buckets in
            // time order from `now` hold the level's earliest entries, so
            // the first non-empty *absolute* bucket (slot index alone can
            // alias near and far entries) bounds that level's minimum.
            let mut far: Option<(u64, usize, u64)> = None; // (due, level, bucket)
            for level in 1..WHEEL_LEVELS {
                let shift = WHEEL_BITS * level as u32;
                let base = self.now >> shift;
                for j in 0..=WHEEL_SLOTS as u64 {
                    let bucket = base + j;
                    let slot = (bucket & (WHEEL_SLOTS as u64 - 1)) as usize;
                    let min = self.slots[level * WHEEL_SLOTS + slot]
                        .iter()
                        .filter(|e| (e.due >> shift) == bucket)
                        .map(|e| e.due)
                        .min();
                    if let Some(due) = min {
                        if far.is_none_or(|(d, _, _)| due < d) {
                            far = Some((due, level, bucket));
                        }
                        break;
                    }
                }
            }
            if let Some(due) = self.overflow.iter().map(|e| e.due).min() {
                if far.is_none_or(|(d, _, _)| due < d) {
                    far = Some((due, WHEEL_LEVELS, 0));
                }
            }
            // Drain level 0 only when it is *strictly* earliest —
            // otherwise a far entry due at (or before) the near minimum
            // must cascade down first, so every entry at one instant
            // coalesces into one pop and `now` never overshoots a
            // pending due.
            if let Some(t) = near {
                if far.is_none_or(|(d, _, _)| t < d) {
                    self.now = t;
                    let slot = (t & (WHEEL_SLOTS as u64 - 1)) as usize;
                    out.append(&mut self.slots[slot]);
                    self.pending -= out.len();
                    out.sort_unstable_by_key(|e| e.flow);
                    return Some(t);
                }
            }
            let (due, level, bucket) =
                far.expect("pending entries must be filed somewhere in the wheel");
            // Jump to the far minimum (nothing is pending earlier) and
            // cascade the winning slot down; its minimum lands in level 0
            // and the next lap drains it together with anything already
            // there at the same instant.
            self.now = due;
            self.cascades += 1;
            let drained: Vec<TimerEntry> = if level == WHEEL_LEVELS {
                std::mem::take(&mut self.overflow)
            } else {
                let shift = WHEEL_BITS * level as u32;
                let slot = (bucket & (WHEEL_SLOTS as u64 - 1)) as usize;
                let vec = &mut self.slots[level * WHEEL_SLOTS + slot];
                let mut matching = Vec::with_capacity(vec.len());
                let mut rest = Vec::new();
                for e in vec.drain(..) {
                    if (e.due >> shift) == bucket {
                        matching.push(e);
                    } else {
                        rest.push(e);
                    }
                }
                *vec = rest;
                matching
            };
            self.pending -= drained.len();
            for e in drained {
                self.schedule(e.due, e.flow);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-device event loop
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FlowCursor {
    next_seq: u64,
    trigger: usize,
}

/// Fresh per-flow cursors at the start of a drive (or a replay from the
/// beginning).
fn fresh_cursors(flows: &[FlowRun]) -> Vec<FlowCursor> {
    flows
        .iter()
        .map(|_| FlowCursor {
            next_seq: 0,
            trigger: 0,
        })
        .collect()
}

/// Virtual-cycle deadline the guarded drivers charge to a device that
/// went silent before declaring it dead: models the liveness watchdog's
/// time-to-detection, exactly as `WedgeParser` charges its burned budget.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 4096;

/// How checkpoint/restore recovery behaves under
/// [`drive_device_recovering`] (and a [`FleetRuntime`] with
/// [`FleetRuntime::set_recovery`] enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Recoveries allowed per device per run before the device is
    /// permanently quarantined (a device that keeps dying is reported,
    /// not retried forever).
    pub max_recoveries: u32,
    /// Checkpoint cadence in **delivered frames**: a bounded-replay knob
    /// — after a trip, at most this many frames (plus the failed batch)
    /// replay silently from the last checkpoint.
    pub checkpoint_interval: u64,
    /// Virtual-cycle liveness deadline: the watchdog burn charged to a
    /// wedged device's clock before it is declared dead. Recovery
    /// restores the pre-wedge clock, so the burn is observable only on
    /// permanently quarantined members.
    pub watchdog_cycles: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_recoveries: 4,
            checkpoint_interval: 64,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
        }
    }
}

/// One successful quarantine-rejoin: the device tripped (or went
/// silent), was restored from its last checkpoint, silently replayed the
/// frames it had already delivered, skipped the isolated culprit (booked
/// as [`netdebug_dataplane::DropReason::Faulted`]) and rejoined the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRecovery {
    /// Which device: the fleet member label, or `device-<task index>`
    /// for bare [`FleetRuntime::run`] tasks.
    pub member: String,
    /// Stable fault id (as in [`DeviceFault::fault`]; `"stall"` for a
    /// watchdog-detected silent wedge).
    pub fault: String,
    /// Pipeline position (`"ingress"`, `"parser"`, `"driver"`, or
    /// `"watchdog"` for stalls).
    pub stage: String,
    /// Human-readable payload detail.
    pub detail: String,
    /// Virtual cycle the restored checkpoint was taken at.
    pub checkpoint_cycle: u64,
    /// Frames silently replayed between the checkpoint and the culprit.
    pub frames_replayed: u64,
    /// The skipped culprit frame.
    pub culprit: Option<CulpritFrame>,
    /// Virtual cycle the device rejoined the run at.
    pub recovered_at_cycle: u64,
}

/// A resumable drive position: the device's full state plus the per-flow
/// emission cursors, both captured at a flush boundary (so the cursors
/// exactly match the frames the device has consumed).
struct DriveCheckpoint {
    device: netdebug_hw::DeviceCheckpoint,
    cursors: Vec<FlowCursor>,
    delivered: u64,
}

/// Checkpoint cadence state threaded through [`drive_device_inner`] when
/// recovery is enabled.
struct RecoverCtl {
    interval: u64,
    delivered: u64,
    next_at: u64,
    ckpt: Option<DriveCheckpoint>,
}

impl RecoverCtl {
    fn new(interval: u64) -> Self {
        RecoverCtl {
            interval: interval.max(1),
            delivered: 0,
            next_at: 0,
            ckpt: None,
        }
    }

    /// Capture a checkpoint at the current drive position.
    fn take(&mut self, device: &Device, cursors: &[FlowCursor]) {
        self.ckpt = Some(DriveCheckpoint {
            device: device.checkpoint(),
            cursors: cursors.to_vec(),
            delivered: self.delivered,
        });
        self.next_at = self.delivered + self.interval;
    }
}

/// How one [`drive_device_inner`] call ended (short of a control error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriveEnd {
    /// Every frame of every flow was dispatched.
    Completed,
    /// The isolation guard caught a panic; the guard holds the evidence.
    Interrupted,
    /// The device went silent mid-run (a [`netdebug_hw::FaultSpec::Stall`]
    /// wedge): frames were dispatched but swallowed without outcomes.
    Stalled,
}

/// The single culprit frame a fault was bisected down to: replayed solo
/// under `catch_unwind`, with its bytes attached so the failure is
/// reproducible outside the run that found it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CulpritFrame {
    /// The [`FlowRun::id`] the frame belongs to.
    pub flow: u32,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Ingress port the frame was injected on.
    pub port: u16,
    /// The frame bytes.
    pub bytes: Vec<u8>,
    /// Last pipeline stage reached by the final packet delivered before
    /// the culprit (from the isolation replay's trace taps), when any
    /// packet was delivered at all.
    pub prior_stage: Option<String>,
}

/// Structured record of a quarantined device: what fired, where, and the
/// culprit the solo replay isolated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceFault {
    /// Which device: the fleet member label, or `device-<task index>`
    /// for bare [`FleetRuntime::run`] tasks.
    pub member: String,
    /// Stable fault id (a [`netdebug_hw::FaultSpec`] id via the typed
    /// panic payload, or `"panic"` for an untyped panic).
    pub fault: String,
    /// Pipeline position the fault fired at (`"ingress"`, `"parser"`,
    /// `"driver"`, or `"unknown"` for untyped panics).
    pub stage: String,
    /// Human-readable payload detail.
    pub detail: String,
    /// Packets the device delivered before the trip (exact when the
    /// isolation replay ran; the dispatched count otherwise).
    pub packets_delivered: u64,
    /// The single culprit frame, when the fault keyed on a frame.
    pub culprit: Option<CulpritFrame>,
    /// The churn trigger that fired the fault (publication faults),
    /// rendered as `flow <id> seq <s>: <op>`.
    pub trigger: Option<String>,
}

/// What the guarded replay caught while bisecting: the culprit (frame or
/// trigger) and the panic payload it raised.
#[derive(Default)]
struct GuardState {
    culprit: Option<CulpritFrame>,
    trigger: Option<String>,
    payload: Option<Box<dyn std::any::Any + Send>>,
}

/// How one coalesced dispatch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushOutcome {
    /// Every frame delivered an outcome.
    Clean,
    /// The guard caught a panic; the guard holds the evidence.
    Caught,
    /// The device swallowed at least one frame without an outcome (a
    /// silent stall wedge). With a guard armed, the first swallowed frame
    /// is recorded as the culprit.
    Stalled,
}

/// Dispatch the pending frames. Without a guard this is the plain hot
/// path: one batch-engine call chain, with a delivered-count acting as
/// the **liveness watchdog** — a device that returns fewer outcomes than
/// frames has silently wedged, and the dispatch reports
/// [`FlushOutcome::Stalled`] instead of pretending the frames were
/// processed. With a guard (isolation replay only) the batch is
/// **bisected under `catch_unwind`**: every frame dispatches solo, and
/// the first one to die — by panic or by silent swallow — is recorded as
/// the culprit, bytes attached, instead of unwinding.
fn flush<S: DeviceSink + ?Sized>(
    device: &mut Device,
    pkts: &mut Vec<(u16, &[u8])>,
    dues: &mut Vec<u64>,
    meta: &mut Vec<(u32, u64)>,
    sink: &mut S,
    stats: &mut RuntimeStats,
    guard: Option<&mut GuardState>,
) -> FlushOutcome {
    if pkts.is_empty() {
        return FlushOutcome::Clean;
    }
    stats.dispatches += 1;
    stats.packets += pkts.len() as u64;
    stats.max_batch = stats.max_batch.max(pkts.len() as u64);
    let mut outcome = FlushOutcome::Clean;
    match guard {
        None => {
            let labels: &[(u32, u64)] = meta;
            let mut seen = 0usize;
            device
                .inject_batch_at(pkts, dues, |i, p| {
                    seen += 1;
                    let (flow, seq) = labels[i];
                    sink.on_packet(flow, seq, p);
                })
                .expect("frame and due lists are built in lockstep");
            if seen < pkts.len() {
                outcome = FlushOutcome::Stalled;
            }
        }
        Some(g) => {
            for i in 0..pkts.len() {
                let one_pkt = [pkts[i]];
                let one_due = [dues[i]];
                let (flow, seq) = meta[i];
                let mut seen = 0usize;
                let solo = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    device
                        .inject_batch_at(&one_pkt, &one_due, |_, p| {
                            seen += 1;
                            sink.on_packet(flow, seq, p);
                        })
                        .expect("one frame, one due time");
                }));
                let caught = match solo {
                    Err(payload) => {
                        g.payload = Some(payload);
                        FlushOutcome::Caught
                    }
                    // A solo frame that came back without an outcome was
                    // swallowed by a stall wedge: same culprit treatment,
                    // no payload.
                    Ok(()) if seen == 0 => FlushOutcome::Stalled,
                    Ok(()) => continue,
                };
                g.culprit = Some(CulpritFrame {
                    flow,
                    seq,
                    port: one_pkt[0].0,
                    bytes: one_pkt[0].1.to_vec(),
                    prior_stage: None,
                });
                outcome = caught;
                break;
            }
        }
    }
    pkts.clear();
    dues.clear();
    meta.clear();
    outcome
}

/// Drive one device's flows to completion on the **caller's thread**: the
/// single-device core of the runtime (a [`FleetRuntime`] runs one of
/// these per device task). Emission order is the determinism contract —
/// virtual time, then flow declaration order, then seq — and every run of
/// frames due at one instant coalesces into batch-engine dispatches of at
/// most `max_batch` frames. Churn triggers flush pending frames, publish
/// their epochs, then emission resumes; the first rejected op aborts the
/// run (frames dispatched before it have already been accounted and
/// delivered to `sink`).
pub fn drive_device<S: DeviceSink + ?Sized>(
    device: &mut Device,
    flows: &[FlowRun],
    max_batch: usize,
    sink: &mut S,
) -> (RuntimeStats, Result<(), ControlError>) {
    // The device's flow-cache counters are cumulative; fold this run's
    // deltas into the returned stats whichever way the loop exits.
    let cache_before = device.cache_stats();
    let mut stats = RuntimeStats::default();
    let mut cursors = fresh_cursors(flows);
    // A silent stall wedge ends the drive early — every later frame
    // would be swallowed anyway; the unguarded driver just stops.
    let result = drive_device_inner(
        device,
        flows,
        max_batch,
        sink,
        &mut stats,
        None,
        None,
        &mut cursors,
    )
    .map(|_| ());
    fold_cache_delta(&mut stats, device, cache_before);
    (stats, result)
}

fn fold_cache_delta(
    stats: &mut RuntimeStats,
    device: &Device,
    before: netdebug_dataplane::CacheStats,
) {
    let after = device.cache_stats();
    stats.cache_hits = after.hits.saturating_sub(before.hits);
    stats.cache_misses = after.misses.saturating_sub(before.misses);
    stats.cache_invalidations = after.invalidations.saturating_sub(before.invalidations);
}

/// [`drive_device`] hardened against hostile devices: the whole drive
/// runs under `catch_unwind`, so a crash-class fault
/// ([`netdebug_hw::FaultSpec`]) — or a genuine engine panic — quarantines
/// the device instead of unwinding the caller.
///
/// On a trip, the offending run is re-driven on a **pre-run clone** of
/// the device (taken only when faults are armed; healthy devices never
/// pay the clone) with `max_batch = 1` and the bisection guard engaged:
/// every frame of the offending batch replays **solo under
/// `catch_unwind`**, and the first to die is reported as the
/// [`CulpritFrame`] — frame bytes and the last trace stage attached —
/// inside a structured [`DeviceFault`]. Determinism of the armed
/// counters (see [`netdebug_hw::FaultState`]) guarantees the replay
/// trips on the same frame the original run did.
///
/// The returned `Result` stays `Ok` on a fault (the fault record *is*
/// the outcome); `stats.faults` counts 1. The device is left in its
/// post-panic state — quarantine it (fleets exclude faulted members from
/// diffing) rather than reusing it.
///
/// Fault-free runs take exactly the [`drive_device`] path plus one
/// `catch_unwind` frame and one `armed_faults` check — the measured
/// overhead is gated ≤ 5% in `BENCH_fault.json`.
pub fn drive_device_guarded<S: DeviceSink + ?Sized>(
    device: &mut Device,
    flows: &[FlowRun],
    max_batch: usize,
    sink: &mut S,
) -> (RuntimeStats, Result<(), ControlError>, Option<DeviceFault>) {
    let snapshot = if device.armed_faults().is_empty() {
        None
    } else {
        Some(device.clone())
    };
    let cache_before = device.cache_stats();
    let mut stats = RuntimeStats::default();
    let mut cursors = fresh_cursors(flows);
    let outcome = {
        let device = &mut *device;
        let sink = &mut *sink;
        let stats = &mut stats;
        let cursors = &mut cursors;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            drive_device_inner(device, flows, max_batch, sink, stats, None, None, cursors)
        }))
    };
    fold_cache_delta(&mut stats, device, cache_before);
    match outcome {
        Ok(Ok(DriveEnd::Stalled)) => {
            // The liveness watchdog: the device missed its instant (a
            // frame went in, no outcome came out). Charge the virtual
            // deadline the watchdog waited before declaring it dead,
            // then quarantine exactly like a panic — the snapshot replay
            // bisects the wedging frame.
            stats.faults += 1;
            device.advance(DEFAULT_WATCHDOG_CYCLES);
            let fault = isolate_fault(snapshot, flows, None, stats.packets);
            (stats, Ok(()), Some(fault))
        }
        Ok(result) => (stats, result.map(|_| ()), None),
        Err(payload) => {
            stats.faults += 1;
            let fault = isolate_fault(snapshot, flows, Some(payload), stats.packets);
            (stats, Ok(()), Some(fault))
        }
    }
}

/// [`drive_device_guarded`] upgraded from quarantine to **recovery**:
/// instead of losing a faulted device for the rest of the run, the
/// driver checkpoints the device at `policy.checkpoint_interval`
/// delivered frames (cheap: table state pins the published `Arc`
/// snapshot chain) and, when a crash-class fault trips — or the
/// virtual-time liveness watchdog catches a silent
/// [`netdebug_hw::FaultSpec::Stall`] wedge — it:
///
/// 1. restores the device from the last checkpoint (tables, externs,
///    taps, clock, fault counters all rewind);
/// 2. silently replays the frames the sink already received, which
///    re-trips deterministically on the same culprit and leaves the
///    emission cursors exactly past it;
/// 3. skips the culprit — booked as a
///    [`netdebug_dataplane::DropReason::Faulted`] drop that occupies the
///    pipeline slot a normal frame would have, so every later frame's
///    timing matches the fault-free run — and hands the sink its record;
/// 4. re-checkpoints and resumes the drive where it left off.
///
/// Each rejoin is recorded as a [`DeviceRecovery`]. Devices that exceed
/// `policy.max_recoveries`, trip *inside a churn publication* (the
/// device-level retry in [`netdebug_hw::Device::install`] is the
/// recovery path for those; a panic surviving it is permanent), or whose
/// fault does not reproduce on replay are permanently quarantined with a
/// [`DeviceFault`], exactly like [`drive_device_guarded`].
pub fn drive_device_recovering<S: DeviceSink + ?Sized>(
    device: &mut Device,
    flows: &[FlowRun],
    max_batch: usize,
    sink: &mut S,
    policy: RecoveryPolicy,
) -> (
    RuntimeStats,
    Result<(), ControlError>,
    Vec<DeviceRecovery>,
    Option<DeviceFault>,
) {
    let cache_before = device.cache_stats();
    let retried_before = device.retried_publications();
    let mut stats = RuntimeStats::default();
    let mut cursors = fresh_cursors(flows);
    let mut ctl = RecoverCtl::new(policy.checkpoint_interval);
    ctl.take(device, &cursors);
    let mut recoveries: Vec<DeviceRecovery> = Vec::new();
    let mut fault = None;
    let result = loop {
        let outcome = {
            let device = &mut *device;
            let sink = &mut *sink;
            let stats = &mut stats;
            let cursors = &mut cursors;
            let ctl = &mut ctl;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                drive_device_inner(
                    device,
                    flows,
                    max_batch,
                    sink,
                    stats,
                    None,
                    Some(ctl),
                    cursors,
                )
            }))
        };
        let payload = match outcome {
            Ok(Err(e)) => break Err(e),
            // `Interrupted` cannot happen without a guard; treat it as
            // completion rather than looping.
            Ok(Ok(DriveEnd::Completed)) | Ok(Ok(DriveEnd::Interrupted)) => break Ok(()),
            Ok(Ok(DriveEnd::Stalled)) => None,
            Err(payload) => Some(payload),
        };
        stats.faults += 1;
        if recoveries.len() >= policy.max_recoveries as usize {
            let mut f = permanent_fault(&ctl, payload);
            f.detail.push_str(" (recovery budget exhausted)");
            fault = Some(f);
            break Ok(());
        }
        match try_recover(
            device,
            flows,
            &mut cursors,
            &mut ctl,
            policy,
            sink,
            &mut stats,
            payload,
        ) {
            Ok(rec) => {
                stats.recoveries += 1;
                recoveries.push(rec);
            }
            Err(f) => {
                fault = Some(f);
                break Ok(());
            }
        }
    };
    // Publication retries are the device-level arm of the same recovery
    // machinery: a transient driver crash absorbed by
    // [`netdebug_hw::Device::install`]'s bounded backoff converged to a
    // consistent snapshot instead of quarantining the device. Surface the
    // convergence as a recovery record so fleet reports account for it.
    let retried = device.retried_publications() - retried_before;
    if retried > 0 && fault.is_none() {
        let detail = match device.last_retried_epoch() {
            Some(e) => format!(
                "{retried} publication(s) converged after transient driver crashes (last reconciled at table epoch {e})"
            ),
            None => format!("{retried} publication(s) converged after transient driver crashes"),
        };
        stats.recoveries += 1;
        recoveries.push(DeviceRecovery {
            member: String::new(),
            fault: "transient-publication".into(),
            stage: "driver".into(),
            detail,
            checkpoint_cycle: 0,
            frames_replayed: 0,
            culprit: None,
            recovered_at_cycle: device.now(),
        });
    }
    fold_cache_delta(&mut stats, device, cache_before);
    (stats, result, recoveries, fault)
}

/// A fault record for a device that cannot (or may no longer) be
/// recovered, built without a fresh isolation replay.
fn permanent_fault(
    ctl: &RecoverCtl,
    payload: Option<Box<dyn std::any::Any + Send>>,
) -> DeviceFault {
    let (fault, stage, detail) = match payload {
        Some(p) => describe_panic(p.as_ref()),
        None => describe_stall(None),
    };
    DeviceFault {
        member: String::new(),
        fault,
        stage,
        detail,
        packets_delivered: ctl.delivered,
        culprit: None,
        trigger: None,
    }
}

/// One quarantine-rejoin attempt: restore from the last checkpoint,
/// silently replay up to the deterministic re-trip, skip the culprit,
/// re-checkpoint. Returns the recovery record, or the permanent
/// [`DeviceFault`] when the trip is unrecoverable (a publication fault,
/// a fault that does not reproduce, or no checkpoint to rewind to).
// The Err arm carries the full quarantine evidence (fault id, stage,
// detail, culprit frame) by design; it is built once per permanent
// quarantine, never on the hot path, so the size lint does not apply.
#[allow(clippy::too_many_arguments, clippy::result_large_err)]
fn try_recover<S: DeviceSink + ?Sized>(
    device: &mut Device,
    flows: &[FlowRun],
    cursors: &mut Vec<FlowCursor>,
    ctl: &mut RecoverCtl,
    policy: RecoveryPolicy,
    sink: &mut S,
    stats: &mut RuntimeStats,
    payload: Option<Box<dyn std::any::Any + Send>>,
) -> Result<DeviceRecovery, DeviceFault> {
    let Some(ckpt) = ctl.ckpt.take() else {
        return Err(permanent_fault(ctl, payload));
    };
    device.restore(&ckpt.device);
    *cursors = ckpt.cursors.clone();
    // Silent replay at max_batch = 1 with the bisection guard engaged:
    // the sink already holds every pre-culprit outcome from the original
    // attempt (batching does not change device results), so the replay
    // counts frames instead of re-delivering them. Determinism of the
    // restored fault counters re-trips on the same culprit, and the solo
    // dispatch leaves `cursors` exactly one past it.
    let mut guard = GuardState::default();
    let mut counter = LastStageSink::default();
    let mut replay_stats = RuntimeStats::default();
    let replayed = {
        let device = &mut *device;
        let counter = &mut counter;
        let replay_stats = &mut replay_stats;
        let guard = &mut guard;
        let cursors = &mut *cursors;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            drive_device_inner(
                device,
                flows,
                1,
                counter,
                replay_stats,
                Some(guard),
                None,
                cursors,
            )
        }))
    };
    if let Some(t) = guard.trigger {
        // The fault fired inside a churn publication. The device-level
        // retry policy already had its chance inside `Device::install`;
        // a panic that survived it is permanent, and skipping a
        // *publication* (unlike a frame) would silently fork the table
        // state away from the schedule.
        let (fault, stage, detail) = match &guard.payload {
            Some(p) => describe_panic(p.as_ref()),
            None => describe_stall(None),
        };
        return Err(DeviceFault {
            member: String::new(),
            fault,
            stage,
            detail,
            packets_delivered: ckpt.delivered + counter.delivered,
            culprit: None,
            trigger: Some(t),
        });
    }
    let Some(mut culprit) = guard.culprit else {
        // The replay ran clean (or ended some other way): the original
        // panic did not come from the device — e.g. the caller's sink —
        // so there is nothing to skip. Quarantine with the original
        // evidence.
        let mut f = permanent_fault(ctl, payload);
        if matches!(replayed, Ok(Ok(DriveEnd::Completed))) {
            f.detail.push_str(" (did not reproduce on device replay)");
        }
        return Err(f);
    };
    culprit.prior_stage = counter.last_stage.clone();
    let (fault, stage, detail) = match &guard.payload {
        Some(p) => describe_panic(p.as_ref()),
        None => {
            let (f, s, _) = describe_stall(Some(&culprit));
            let d = format!(
                "device went silent at flow {} seq {}; virtual watchdog fired after {} cycles",
                culprit.flow, culprit.seq, policy.watchdog_cycles
            );
            (f, s, d)
        }
    };
    let fi = flows
        .iter()
        .position(|f| f.id == culprit.flow)
        .expect("culprit flow comes from this drive's flow list");
    // Skip the culprit: account it as a Faulted drop at its due instant
    // (occupying the pipeline slot a clean frame would have) and move
    // the emission cursor past it.
    let p = device.skip_faulted(culprit.port, flows[fi].due(culprit.seq));
    stats.packets += 1;
    sink.on_packet(culprit.flow, culprit.seq, p);
    cursors[fi].next_seq = culprit.seq + 1;
    ctl.delivered = ckpt.delivered + counter.delivered + 1;
    ctl.take(device, cursors);
    Ok(DeviceRecovery {
        member: String::new(),
        fault,
        stage,
        detail,
        checkpoint_cycle: ckpt.device.at_cycle(),
        frames_replayed: counter.delivered,
        culprit: Some(culprit),
        recovered_at_cycle: device.now(),
    })
}

/// Decode a caught panic payload into `(fault id, stage, detail)`.
pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> (String, String, String) {
    if let Some(fp) = payload.downcast_ref::<FaultPanic>() {
        (
            fp.fault.to_string(),
            fp.stage.to_string(),
            fp.detail.clone(),
        )
    } else if let Some(s) = payload.downcast_ref::<String>() {
        ("panic".into(), "unknown".into(), s.clone())
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        ("panic".into(), "unknown".into(), (*s).to_string())
    } else {
        (
            "panic".into(),
            "unknown".into(),
            "non-string panic payload".into(),
        )
    }
}

/// Counting sink for the isolation replay: remembers how many packets
/// were delivered before the trip and the last stage the final one
/// reached (the "last trace record" attached to the culprit).
#[derive(Default)]
struct LastStageSink {
    delivered: u64,
    last_stage: Option<String>,
}

impl DeviceSink for LastStageSink {
    fn on_packet(&mut self, _flow: u32, _seq: u64, p: Processed) {
        self.delivered += 1;
        self.last_stage = Some(p.last_stage);
    }
}

/// Render the watchdog's verdict on a silent wedge as `(fault id,
/// stage, detail)`, naming the wedging frame when the replay found it.
fn describe_stall(culprit: Option<&CulpritFrame>) -> (String, String, String) {
    let detail = match culprit {
        Some(c) => format!(
            "device went silent at flow {} seq {}; virtual watchdog fired after {} cycles",
            c.flow, c.seq, DEFAULT_WATCHDOG_CYCLES
        ),
        None => format!(
            "device went silent; virtual watchdog fired after {DEFAULT_WATCHDOG_CYCLES} cycles"
        ),
    };
    ("stall".into(), "watchdog".into(), detail)
}

/// Bisect a caught device fault down to its culprit by re-driving a
/// pre-run snapshot with the guard engaged (frame-at-a-time dispatch,
/// every frame solo under `catch_unwind`). `payload` is the caught panic
/// payload, or `None` when the liveness watchdog caught a silent stall
/// (no panic to decode — the culprit alone names the wedge). Without a
/// snapshot (no armed faults — a genuine engine panic) the record
/// carries the payload but no culprit.
fn isolate_fault(
    snapshot: Option<Device>,
    flows: &[FlowRun],
    payload: Option<Box<dyn std::any::Any + Send>>,
    packets_dispatched: u64,
) -> DeviceFault {
    let (mut fault, mut stage, mut detail) = match payload {
        Some(p) => describe_panic(p.as_ref()),
        None => describe_stall(None),
    };
    let mut culprit = None;
    let mut trigger = None;
    let mut delivered = packets_dispatched;
    if let Some(mut replay) = snapshot {
        let mut guard = GuardState::default();
        let mut counter = LastStageSink::default();
        let mut replay_stats = RuntimeStats::default();
        let mut replay_cursors = fresh_cursors(flows);
        // The guard catches every frame and trigger trip solo, so this
        // outer catch is defensive only (a panic escaping it would be a
        // harness bug, not a device fault).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive_device_inner(
                &mut replay,
                flows,
                1,
                &mut counter,
                &mut replay_stats,
                Some(&mut guard),
                None,
                &mut replay_cursors,
            )
        }));
        if let Some(p) = guard.payload {
            let (f, s, d) = describe_panic(p.as_ref());
            fault = f;
            stage = s;
            detail = d;
        }
        if let Some(mut c) = guard.culprit {
            c.prior_stage = counter.last_stage.clone();
            if fault == "stall" {
                let (f, s, d) = describe_stall(Some(&c));
                fault = f;
                stage = s;
                detail = d;
            }
            culprit = Some(c);
        }
        trigger = guard.trigger;
        delivered = counter.delivered;
    }
    DeviceFault {
        member: String::new(),
        fault,
        stage,
        detail,
        packets_delivered: delivered,
        culprit,
        trigger,
    }
}

/// Fold a clean flush of `n` frames into the checkpoint cadence, taking
/// a fresh checkpoint when it comes due. Only called at flush sites
/// where the cursors exactly describe the device's consumed frames (NOT
/// at trigger-drain flushes: there the trigger index has advanced past
/// an op that has not been applied yet, so a checkpoint would replay
/// without it).
fn checkpoint_if_due(
    device: &Device,
    cursors: &[FlowCursor],
    recover: &mut Option<&mut RecoverCtl>,
    n: usize,
) {
    if let Some(ctl) = recover.as_deref_mut() {
        ctl.delivered += n as u64;
        if ctl.delivered >= ctl.next_at {
            ctl.take(device, cursors);
        }
    }
}

/// Count a clean trigger-site flush without checkpointing (see
/// [`checkpoint_if_due`]).
fn note_delivered(recover: &mut Option<&mut RecoverCtl>, n: usize) {
    if let Some(ctl) = recover.as_deref_mut() {
        ctl.delivered += n as u64;
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_device_inner<S: DeviceSink + ?Sized>(
    device: &mut Device,
    flows: &[FlowRun],
    max_batch: usize,
    sink: &mut S,
    stats: &mut RuntimeStats,
    mut guard: Option<&mut GuardState>,
    mut recover: Option<&mut RecoverCtl>,
    cursors: &mut [FlowCursor],
) -> Result<DriveEnd, ControlError> {
    // Checkpoints are only taken at flush boundaries, so with recovery
    // enabled the batch is clamped to the checkpoint interval — otherwise
    // a short run inside one big batch would never re-checkpoint and
    // every recovery would replay from the start. Batch size never
    // changes device outcomes (the isolation replay depends on that), so
    // the clamp only affects dispatch accounting.
    let max_batch = match recover.as_ref() {
        Some(ctl) => max_batch.clamp(1, ctl.interval.max(1) as usize),
        None => max_batch.max(1),
    };
    debug_assert_eq!(cursors.len(), flows.len());
    let mut pkts: Vec<(u16, &[u8])> = Vec::new();
    let mut dues: Vec<u64> = Vec::new();
    let mut meta: Vec<(u32, u64)> = Vec::new();

    // Single-flow fast path: the wheel degenerates to "next seq" — skip
    // it entirely so paced single-stream drivers (NetDebug sessions,
    // fleet members) pay no scheduling overhead per packet. Emission
    // order is identical by construction.
    if flows.len() == 1 {
        let flow = &flows[0];
        let count = flow.frames.len() as u64;
        let mut last_due: Option<u64> = None;
        while cursors[0].next_seq < count {
            let s = cursors[0].next_seq;
            while cursors[0].trigger < flow.triggers.len()
                && flow.triggers[cursors[0].trigger].0 <= s
            {
                let t = cursors[0].trigger;
                cursors[0].trigger += 1;
                let n = pkts.len();
                match flush(
                    device,
                    &mut pkts,
                    &mut dues,
                    &mut meta,
                    sink,
                    stats,
                    guard.as_deref_mut(),
                ) {
                    FlushOutcome::Clean => note_delivered(&mut recover, n),
                    FlushOutcome::Caught => return Ok(DriveEnd::Interrupted),
                    FlushOutcome::Stalled => return Ok(DriveEnd::Stalled),
                }
                match apply_trigger(device, flow, t, s, guard.as_deref_mut()) {
                    TriggerOutcome::Applied => {}
                    TriggerOutcome::Rejected(e) => return Err(e),
                    TriggerOutcome::Caught => return Ok(DriveEnd::Interrupted),
                }
            }
            let due = flow.due(s);
            if last_due != Some(due) {
                stats.instants += 1;
                last_due = Some(due);
            }
            pkts.push((flow.as_port, flow.frames[s as usize].data.as_slice()));
            dues.push(due);
            meta.push((flow.id, s));
            cursors[0].next_seq += 1;
            if pkts.len() >= max_batch {
                let n = pkts.len();
                match flush(
                    device,
                    &mut pkts,
                    &mut dues,
                    &mut meta,
                    sink,
                    stats,
                    guard.as_deref_mut(),
                ) {
                    FlushOutcome::Clean => checkpoint_if_due(device, cursors, &mut recover, n),
                    FlushOutcome::Caught => return Ok(DriveEnd::Interrupted),
                    FlushOutcome::Stalled => return Ok(DriveEnd::Stalled),
                }
            }
        }
        let n = pkts.len();
        match flush(
            device,
            &mut pkts,
            &mut dues,
            &mut meta,
            sink,
            stats,
            guard.as_deref_mut(),
        ) {
            FlushOutcome::Clean => note_delivered(&mut recover, n),
            FlushOutcome::Caught => return Ok(DriveEnd::Interrupted),
            FlushOutcome::Stalled => return Ok(DriveEnd::Stalled),
        }
        stats.max_ready_depth = stats.max_ready_depth.max(u64::from(!flows.is_empty()));
        return Ok(DriveEnd::Completed);
    }

    let mut wheel = TimerWheel::new(device.now());
    for (i, flow) in flows.iter().enumerate() {
        if cursors[i].next_seq < flow.frames.len() as u64 {
            wheel.schedule(flow.due(cursors[i].next_seq), i as u32);
        }
    }
    let mut ready: Vec<TimerEntry> = Vec::new();
    while let Some(instant) = wheel.pop_next(&mut ready) {
        stats.instants += 1;
        stats.max_ready_depth = stats.max_ready_depth.max(ready.len() as u64);
        for entry in &ready {
            let fi = entry.flow as usize;
            let flow = &flows[fi];
            let count = flow.frames.len() as u64;
            loop {
                let s = cursors[fi].next_seq;
                while cursors[fi].trigger < flow.triggers.len()
                    && flow.triggers[cursors[fi].trigger].0 <= s
                {
                    let t = cursors[fi].trigger;
                    cursors[fi].trigger += 1;
                    let n = pkts.len();
                    match flush(
                        device,
                        &mut pkts,
                        &mut dues,
                        &mut meta,
                        sink,
                        stats,
                        guard.as_deref_mut(),
                    ) {
                        FlushOutcome::Clean => note_delivered(&mut recover, n),
                        FlushOutcome::Caught => {
                            stats.wheel_cascades += wheel.cascades;
                            return Ok(DriveEnd::Interrupted);
                        }
                        FlushOutcome::Stalled => {
                            stats.wheel_cascades += wheel.cascades;
                            return Ok(DriveEnd::Stalled);
                        }
                    }
                    match apply_trigger(device, flow, t, s, guard.as_deref_mut()) {
                        TriggerOutcome::Applied => {}
                        TriggerOutcome::Rejected(e) => {
                            stats.wheel_cascades += wheel.cascades;
                            return Err(e);
                        }
                        TriggerOutcome::Caught => {
                            stats.wheel_cascades += wheel.cascades;
                            return Ok(DriveEnd::Interrupted);
                        }
                    }
                }
                if s >= count || flow.due(s) != instant {
                    break;
                }
                pkts.push((flow.as_port, flow.frames[s as usize].data.as_slice()));
                dues.push(instant);
                meta.push((flow.id, s));
                cursors[fi].next_seq += 1;
                if pkts.len() >= max_batch {
                    let n = pkts.len();
                    match flush(
                        device,
                        &mut pkts,
                        &mut dues,
                        &mut meta,
                        sink,
                        stats,
                        guard.as_deref_mut(),
                    ) {
                        FlushOutcome::Clean => checkpoint_if_due(device, cursors, &mut recover, n),
                        FlushOutcome::Caught => {
                            stats.wheel_cascades += wheel.cascades;
                            return Ok(DriveEnd::Interrupted);
                        }
                        FlushOutcome::Stalled => {
                            stats.wheel_cascades += wheel.cascades;
                            return Ok(DriveEnd::Stalled);
                        }
                    }
                }
            }
            if cursors[fi].next_seq < count {
                wheel.schedule(flow.due(cursors[fi].next_seq), entry.flow);
            }
        }
        // Flush at the instant boundary: dispatches never span a clock
        // step, so `inject_batch_at` groups stay whole-instant batches.
        let n = pkts.len();
        match flush(
            device,
            &mut pkts,
            &mut dues,
            &mut meta,
            sink,
            stats,
            guard.as_deref_mut(),
        ) {
            FlushOutcome::Clean => checkpoint_if_due(device, cursors, &mut recover, n),
            FlushOutcome::Caught => {
                stats.wheel_cascades += wheel.cascades;
                return Ok(DriveEnd::Interrupted);
            }
            FlushOutcome::Stalled => {
                stats.wheel_cascades += wheel.cascades;
                return Ok(DriveEnd::Stalled);
            }
        }
    }
    stats.wheel_cascades += wheel.cascades;
    Ok(DriveEnd::Completed)
}

/// How one control-plane trigger application ended.
enum TriggerOutcome {
    /// Applied cleanly (or rejected cleanly — see `Rejected`).
    Applied,
    /// The control plane refused the op; surfaced to the caller as usual.
    Rejected(ControlError),
    /// The device panicked inside the op (e.g. a `FailPublication` fault)
    /// and a guard was armed: the panic was caught and recorded, and the
    /// drive loop should stop replaying this device.
    Caught,
}

/// Apply `flow.triggers[t]` to the device, catching a device panic when a
/// fault-isolation guard is armed so the publication that tripped the
/// fault can be named in the [`DeviceFault`] record.
fn apply_trigger(
    device: &mut Device,
    flow: &FlowRun,
    t: usize,
    s: u64,
    guard: Option<&mut GuardState>,
) -> TriggerOutcome {
    match guard {
        None => match flow.triggers[t].1.apply(device) {
            Ok(()) => TriggerOutcome::Applied,
            Err(e) => TriggerOutcome::Rejected(e),
        },
        Some(g) => {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                flow.triggers[t].1.apply(device)
            }));
            match outcome {
                Ok(Ok(())) => TriggerOutcome::Applied,
                Ok(Err(e)) => TriggerOutcome::Rejected(e),
                Err(payload) => {
                    g.trigger = Some(format!(
                        "flow {} seq {}: {:?}",
                        flow.id, s, flow.triggers[t].1
                    ));
                    g.payload = Some(payload);
                    TriggerOutcome::Caught
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The persistent worker fleet
// ---------------------------------------------------------------------

/// One device's work order for [`FleetRuntime::run`]: the device (moved
/// in, always handed back), its flows, and the sink its packets stream
/// into.
pub struct DeviceTask<S> {
    /// The device under test.
    pub device: Device,
    /// Flows aimed at it.
    pub flows: Vec<FlowRun>,
    /// Packet consumer.
    pub sink: S,
}

/// What one [`DeviceTask`] came back as: the device and sink (returned
/// even when a churn op failed, so fleets can restore their members), the
/// run's counters, and the run outcome.
pub struct DeviceDone<S> {
    /// The device, clock advanced past its last dispatched instant.
    pub device: Device,
    /// The sink, holding whatever it accumulated.
    pub sink: S,
    /// Event-loop counters for this device.
    pub stats: RuntimeStats,
    /// `Err` if a churn trigger was rejected mid-run.
    pub result: Result<(), ControlError>,
    /// `Some` if the device panicked mid-run (a crash-class fault): the
    /// device was quarantined and the panic isolated to a culprit frame
    /// or publication. Healthy devices of the same run are unaffected.
    pub fault: Option<DeviceFault>,
    /// Checkpoint/restore rejoins this device went through (non-empty
    /// only when the runtime has a [`RecoveryPolicy`] set and the device
    /// tripped but recovered; such a device finished its run and is
    /// **not** quarantined).
    pub recoveries: Vec<DeviceRecovery>,
}

type PoolJob = Box<dyn FnOnce() + Send>;

struct PoolWorker {
    handle: Option<JoinHandle<()>>,
}

/// A persistent, lazily-spawned worker set that multiplexes any number of
/// [`DeviceTask`]s onto at most `workers` OS threads (mirroring the shard
/// pool in `netdebug_dataplane::pool`, but untyped so one pool serves
/// every task shape). Workers survive across runs — a fleet no longer
/// spawns fresh threads every window — and are joined on drop. With
/// `workers <= 1` (or a single task) everything runs inline on the
/// caller's thread: no threads, identical results, which is what makes
/// the 1-worker run the reference for the determinism contract.
pub struct FleetRuntime {
    target: usize,
    max_batch: usize,
    recovery: Option<RecoveryPolicy>,
    job_tx: Sender<PoolJob>,
    job_rx: Arc<Mutex<Receiver<PoolJob>>>,
    workers: Vec<PoolWorker>,
    stats: RuntimeStats,
    runs: u64,
}

impl std::fmt::Debug for FleetRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRuntime")
            .field("target", &self.target)
            .field("workers", &self.workers.len())
            .field("runs", &self.runs)
            .finish()
    }
}

impl Default for FleetRuntime {
    fn default() -> Self {
        Self::with_default_workers()
    }
}

impl FleetRuntime {
    /// A runtime targeting exactly `workers` OS threads (min 1; 1 = fully
    /// inline).
    pub fn new(workers: usize) -> Self {
        let (job_tx, job_rx) = channel::<PoolJob>();
        FleetRuntime {
            target: workers.max(1),
            max_batch: DEFAULT_MAX_BATCH,
            recovery: None,
            job_tx,
            job_rx: Arc::new(Mutex::new(job_rx)),
            workers: Vec::new(),
            stats: RuntimeStats::default(),
            runs: 0,
        }
    }

    /// A runtime sized for this host: `min(4, available cores)` workers.
    pub fn with_default_workers() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(cores.min(4))
    }

    /// The worker-count target.
    pub fn target_workers(&self) -> usize {
        self.target
    }

    /// OS threads currently alive (0 until the first multi-task run;
    /// observability for the reuse regression tests, like
    /// `Dataplane::pool_workers`).
    pub fn pool_workers(&self) -> usize {
        self.workers.len()
    }

    /// Coalesced-dispatch cap handed to every device loop.
    pub fn set_max_batch(&mut self, max_batch: usize) {
        self.max_batch = max_batch.max(1);
    }

    /// Enable (or disable, with `None`) checkpoint/restore recovery:
    /// every [`FleetRuntime::run`] device is driven through
    /// [`drive_device_recovering`], so a crash-class fault costs one
    /// skipped frame and a [`DeviceRecovery`] record instead of the
    /// device. Off by default — quarantine-only runs keep the exact
    /// pre-recovery semantics (and pay zero checkpoint overhead).
    pub fn set_recovery(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
    }

    /// The active recovery policy, if any.
    pub fn recovery(&self) -> Option<RecoveryPolicy> {
        self.recovery
    }

    /// Runs completed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Counters accumulated across every task of every run.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    fn ensure(&mut self, workers: usize) {
        while self.workers.len() < workers {
            let rx = Arc::clone(&self.job_rx);
            let idx = self.workers.len();
            let handle = std::thread::Builder::new()
                .name(format!("netdebug-fleet-{idx}"))
                .spawn(move || loop {
                    // Hold the lock only while receiving; execution happens
                    // unlocked so idle workers can pick up the next job.
                    let job = {
                        // A worker that panicked while holding the lock
                        // poisons it; the queue itself is still coherent
                        // (recv is atomic), so recover instead of taking
                        // the whole pool down.
                        let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                })
                .expect("spawn fleet runtime worker");
            self.workers.push(PoolWorker {
                handle: Some(handle),
            });
        }
    }

    /// Run arbitrary per-device jobs on the persistent worker set and
    /// collect their outcomes **in job order**. Jobs run inline when a
    /// single worker is targeted (or there is only one job); otherwise
    /// they are dealt to the workers and collected by index. A panicking
    /// job no longer unwinds the caller (or wedges the pool): its panic
    /// payload comes back as the `Err` arm of its slot, and the worker
    /// that ran it survives for later jobs.
    ///
    /// [`FleetRuntime::run`] is built on this; it is also the untyped
    /// escape hatch for device-shaped work that is not flow-driven
    /// (e.g. probe diffing).
    pub fn execute<R, F>(&mut self, jobs: Vec<F>) -> Vec<std::thread::Result<R>>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let n = jobs.len();
        if self.target <= 1 || n <= 1 {
            return jobs
                .into_iter()
                .map(|job| std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)))
                .collect();
        }
        self.ensure(self.target.min(n));
        let (result_tx, result_rx) = channel::<(usize, std::thread::Result<R>)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            let boxed: PoolJob = Box::new(move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                let _ = tx.send((i, out));
            });
            self.job_tx.send(boxed).expect("fleet worker queue closed");
        }
        drop(result_tx);
        let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::new();
        slots.resize_with(n, || None);
        for _ in 0..n {
            let (i, res) = result_rx
                .recv()
                .expect("fleet runtime result channel closed");
            slots[i] = Some(res);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job reports exactly once"))
            .collect()
    }

    /// Run every task and hand the devices back **in task order** — the
    /// deterministic cross-device ordering (task index is the device id).
    pub fn run<S>(&mut self, tasks: Vec<DeviceTask<S>>) -> Vec<DeviceDone<S>>
    where
        S: DeviceSink + Send + 'static,
    {
        self.runs += 1;
        let max_batch = self.max_batch;
        let recovery = self.recovery;
        let jobs: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, mut task)| {
                move || {
                    let (stats, result, mut recoveries, mut fault) = match recovery {
                        Some(policy) => drive_device_recovering(
                            &mut task.device,
                            &task.flows,
                            max_batch,
                            &mut task.sink,
                            policy,
                        ),
                        None => {
                            let (stats, result, fault) = drive_device_guarded(
                                &mut task.device,
                                &task.flows,
                                max_batch,
                                &mut task.sink,
                            );
                            (stats, result, Vec::new(), fault)
                        }
                    };
                    if let Some(f) = fault.as_mut() {
                        f.member = format!("device-{i}");
                    }
                    for r in recoveries.iter_mut() {
                        r.member = format!("device-{i}");
                    }
                    DeviceDone {
                        device: task.device,
                        sink: task.sink,
                        stats,
                        result,
                        fault,
                        recoveries,
                    }
                }
            })
            .collect();
        let done: Vec<DeviceDone<S>> = self
            .execute(jobs)
            .into_iter()
            .map(|res| match res {
                Ok(d) => d,
                // `drive_device_guarded` catches device panics itself, so
                // a panic escaping the job means the sink (or harness)
                // itself blew up — that is a caller bug, not a device
                // fault, and hiding it would mask broken tests.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        for d in &done {
            self.stats.absorb(&d.stats);
        }
        done
    }
}

impl Drop for FleetRuntime {
    fn drop(&mut self) {
        // Closing the job channel ends each worker's recv loop; join so no
        // detached thread outlives the runtime.
        drop(std::mem::replace(&mut self.job_tx, channel().0));
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// Deterministic splitmix64 for model comparison inputs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The wheel must pop entries in exactly (due, flow) order, instant by
    /// instant — compared against a BinaryHeap model over schedules that
    /// exercise every level and the overflow list, including re-schedules
    /// after pops (the event loop's steady state).
    #[test]
    fn wheel_matches_heap_model() {
        for seed in 0..16u64 {
            let mut rng = Rng(seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
            let mut wheel = TimerWheel::new(0);
            let mut model: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
            let mut pendings: Vec<(u64, u32)> = Vec::new();
            for flow in 0..48u32 {
                // Deltas spanning level 0 (tiny), mid levels, and overflow.
                let due = match flow % 5 {
                    0 => rng.next() % 16,
                    1 => rng.next() % (1 << 8),
                    2 => rng.next() % (1 << 17),
                    3 => rng.next() % (1 << 30),
                    _ => (1u64 << 33) + rng.next() % (1 << 34),
                };
                wheel.schedule(due, flow);
                model.push(std::cmp::Reverse((due, flow)));
                pendings.push((due, flow));
            }
            let mut ready = Vec::new();
            let mut popped = 0usize;
            let mut reschedules = 96usize;
            while let Some(t) = wheel.pop_next(&mut ready) {
                for e in &ready {
                    let std::cmp::Reverse((due, flow)) =
                        model.pop().expect("wheel popped more than scheduled");
                    assert_eq!((t, e.flow), (due, flow), "seed {seed}");
                    assert_eq!(e.due, due);
                    popped += 1;
                }
                // Steady state: fired flows re-file at a later instant.
                // Half the deltas are sub-256 so freshly-filed level-0
                // entries routinely land *behind* older upper-level ones —
                // the pop must still take the global minimum.
                if reschedules > 0 {
                    reschedules -= ready.len().min(reschedules);
                    for e in &ready {
                        let delta = if e.flow % 2 == 0 {
                            1 + rng.next() % 255
                        } else {
                            1 + rng.next() % (1 << 20)
                        };
                        let due = t + delta;
                        wheel.schedule(due, e.flow);
                        model.push(std::cmp::Reverse((due, e.flow)));
                    }
                }
            }
            assert!(model.is_empty(), "seed {seed}: wheel lost entries");
            assert!(popped >= pendings.len());
        }
    }

    /// Regression: pacing classes 80 and 320 from origin 0 put the
    /// gap-320 flow at level 1 while the gap-80 flow laps level 0; at
    /// cycle 320 both are due and must come out of ONE pop in flow
    /// order — and the near wheel must never overshoot the far entry
    /// (which used to strand it behind the bucket scan and panic).
    #[test]
    fn wheel_merges_near_and_far_entries_due_at_one_instant() {
        let mut wheel = TimerWheel::new(0);
        wheel.schedule(80, 0); // paced at 80, will lap
        wheel.schedule(320, 1); // files at level 1
        let mut ready = Vec::new();
        for k in 1..=3u64 {
            assert_eq!(wheel.pop_next(&mut ready), Some(80 * k));
            assert_eq!(ready.iter().map(|e| e.flow).collect::<Vec<_>>(), vec![0]);
            wheel.schedule(80 * (k + 1), 0);
        }
        // Cycle 320: the lapped level-0 entry and the cascaded level-1
        // entry fire together, sorted by flow.
        assert_eq!(wheel.pop_next(&mut ready), Some(320));
        assert_eq!(ready.iter().map(|e| e.flow).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(wheel.pop_next(&mut ready), None);

        // And a near entry filed *later* than a far one must not be
        // popped first: 350 sits in level 0, 320 still at level 1.
        let mut wheel = TimerWheel::new(0);
        wheel.schedule(320, 1);
        let mut ready = Vec::new();
        assert_eq!(wheel.pop_next(&mut ready), Some(320));
        let mut wheel = TimerWheel::new(0);
        wheel.schedule(300, 1); // level 1 relative to 0
        wheel.schedule(260, 0);
        assert_eq!(wheel.pop_next(&mut ready), Some(260));
        wheel.schedule(290, 0); // level 0 now, later than the far 300
        assert_eq!(wheel.pop_next(&mut ready), Some(290));
        assert_eq!(wheel.pop_next(&mut ready), Some(300));
        assert_eq!(ready.iter().map(|e| e.flow).collect::<Vec<_>>(), vec![1]);
    }

    /// A worker that dies while holding the pool's job-queue lock leaves
    /// it poisoned; `ensure()`'s receive loop must shrug the poison off
    /// (the queue itself is still coherent) so the **next** run executes
    /// normally instead of panicking every worker on lock acquisition.
    #[test]
    fn pool_survives_a_poisoned_job_lock() {
        let mut rt = FleetRuntime::new(3);
        let rx = Arc::clone(&rt.job_rx);
        let _ = std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(move || {
                let _guard = rx.lock().unwrap();
                panic!("die holding the fleet pool lock");
            })
            .expect("spawn poisoner")
            .join();
        assert!(
            rt.job_rx.is_poisoned(),
            "the lock must actually be poisoned"
        );
        let jobs: Vec<_> = (0..8).map(|i: u64| move || i * 2).collect();
        let out: Vec<u64> = rt
            .execute(jobs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|_| panic!("job panicked")))
            .collect();
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
        assert!(rt.pool_workers() > 0, "jobs ran on the pooled workers");
    }

    #[test]
    fn wheel_coalesces_same_instant_entries_sorted_by_flow() {
        let mut wheel = TimerWheel::new(100);
        wheel.schedule(500, 7);
        wheel.schedule(500, 3);
        wheel.schedule(500, 5);
        wheel.schedule(90, 9); // past: clamped to now
        let mut ready = Vec::new();
        assert_eq!(wheel.pop_next(&mut ready), Some(100));
        assert_eq!(ready.iter().map(|e| e.flow).collect::<Vec<_>>(), vec![9]);
        assert_eq!(wheel.pop_next(&mut ready), Some(500));
        assert_eq!(
            ready.iter().map(|e| e.flow).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert_eq!(wheel.pop_next(&mut ready), None);
    }
}
