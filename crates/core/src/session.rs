//! The host-side controller and test sessions.
//!
//! The paper's software tool "uses a dedicated interface to configure the
//! generation of test packets and to collect test results". [`NetDebug`]
//! plays that role: it owns a deployed [`Device`], programs the in-device
//! generator and checker, runs streams, and assembles a [`SessionReport`].

use crate::checker::{Checker, StreamStats, Violation};
use crate::generator::{Expectation, Generator, StreamSpec};
use crate::runtime::{
    drive_device_guarded, drive_device_recovering, DeviceFault, DeviceRecovery, DeviceSink,
    FlowRun, RecoveryPolicy, RuntimeStats, DEFAULT_MAX_BATCH,
};
use netdebug_hw::{Backend, DeployError, Device, Processed};
use serde::{Deserialize, Serialize};

/// A NetDebug instance attached to one device.
#[derive(Debug)]
pub struct NetDebug {
    device: Device,
    generator: Generator,
    checker: Checker,
    /// Per-stream (first injection cycle, last completion cycle) — the
    /// wall-clock window performance measurements are computed over.
    windows: std::collections::HashMap<u16, (u64, u64)>,
    /// Event-loop counters accumulated across every stream run.
    runtime: RuntimeStats,
    /// The most recent crash-class fault the device tripped mid-stream
    /// (`None` while the device behaves). See [`NetDebug::last_fault`].
    last_fault: Option<DeviceFault>,
    /// Checkpoint/restore recovery policy for stream runs (`None` keeps
    /// the quarantine-only guarded driver).
    recovery: Option<RecoveryPolicy>,
    /// Recoveries the most recent stream run performed.
    last_recoveries: Vec<DeviceRecovery>,
}

impl NetDebug {
    /// Attach to an already deployed device.
    pub fn new(device: Device) -> Self {
        NetDebug {
            device,
            generator: Generator::new(),
            checker: Checker::new(),
            windows: std::collections::HashMap::new(),
            runtime: RuntimeStats::default(),
            last_fault: None,
            recovery: None,
            last_recoveries: Vec::new(),
        }
    }

    /// Compile `source` with `backend`, deploy, and attach.
    pub fn deploy(backend: &Backend, source: &str) -> Result<Self, DeployError> {
        Ok(Self::new(Device::deploy_source(backend, source)?))
    }

    /// The device under test.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access (control-plane configuration).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// The checker's current state.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Packets generated, injected and checked per batch window in
    /// [`NetDebug::run_stream`].
    pub const STREAM_WINDOW: u64 = 256;

    /// Run one stream to completion.
    ///
    /// The stream is driven in windows of [`NetDebug::STREAM_WINDOW`]
    /// packets: the generator stamps a whole window up front
    /// ([`Generator::build_batch`]), the device ingests it through the
    /// streaming batched internal path
    /// ([`netdebug_hw::Device::inject_batch_with`]), and each outcome is
    /// handed to the checker ([`Checker::observe_processed`]) the moment
    /// the device accounts it — no window of outcomes is ever
    /// materialised. Back-to-back windows additionally shard across OS
    /// threads when the device is configured with `shards > 1`
    /// ([`netdebug_hw::DeviceConfig::shards`]) and the deployed program is
    /// parallel-safe. Verdicts, statistics and violations are identical to
    /// the historical packet-at-a-time loop on every path.
    pub fn run_stream(&mut self, spec: &StreamSpec) {
        self.run_stream_churn(spec, &crate::churn::ChurnSchedule::new())
            .expect("an empty churn schedule cannot fail");
    }

    /// Run one stream with **rule churn**: the stream becomes one
    /// [`FlowRun`] on the virtual-time event loop
    /// ([`crate::runtime::drive_device`]), and every
    /// [`crate::churn::ChurnOp`] the schedule keys to a window index
    /// becomes a trigger at that window's first sequence number — it
    /// publishes through the device's epoch-snapshot control plane at the
    /// scheduled virtual time, after the preceding frames flush and
    /// before the window's first frame dispatches. The traffic keeps
    /// flowing through the batched (and, with [`NetDebug::set_shards`],
    /// parallel) path throughout — installs land as atomic epoch
    /// publications between dispatches, never by falling back to
    /// sequential execution.
    ///
    /// A schedule keying an op to a window this stream will never run is
    /// rejected up front ([`crate::churn::ChurnError::UnreachableWindow`])
    /// — otherwise the op would silently never publish and the run would
    /// report plain traffic as a churn scenario. Control-plane rejections
    /// propagate from the first failing op (traffic injected up to that
    /// point has already been checked).
    pub fn run_stream_churn(
        &mut self,
        spec: &StreamSpec,
        schedule: &crate::churn::ChurnSchedule,
    ) -> Result<(), crate::churn::ChurnError> {
        schedule.validate(spec.count.div_ceil(Self::STREAM_WINDOW))?;
        self.checker
            .open_stream(spec.stream, spec.expect, spec.count);
        let gap = Generator::gap_cycles(spec, self.device.config().core_clock_hz);
        let origin = self.device.now();
        // Pre-build the whole stream, window by window, stamping each
        // window at the device clock it would historically have observed
        // (paced windows advance it by gap × window length).
        let mut frames = Vec::with_capacity(spec.count as usize);
        let mut window_start = origin;
        let mut seq = 0u64;
        while seq < spec.count {
            let n = Self::STREAM_WINDOW.min(spec.count - seq);
            frames.extend(self.generator.build_batch(spec, seq, n, window_start, gap));
            window_start += gap * n;
            seq += n;
        }
        let first_ts = frames.first().map(|p| p.ts_cycles);
        // Window-keyed churn ops become seq-keyed triggers on the flow.
        let mut triggers: Vec<(u64, crate::churn::ChurnOp)> = schedule
            .ops
            .iter()
            .map(|(w, op)| (w * Self::STREAM_WINDOW, op.clone()))
            .collect();
        triggers.sort_by_key(|(s, _)| *s); // stable: schedule order within a window
        let flow = FlowRun {
            id: u32::from(spec.stream),
            as_port: spec.as_port,
            frames: std::sync::Arc::new(frames),
            origin,
            gap,
            triggers,
        };
        let mut sink = StreamSink {
            checker: &mut self.checker,
            stream: spec.stream,
            last_done: 0,
        };
        let (stats, result, recoveries, fault) = match self.recovery {
            Some(policy) => drive_device_recovering(
                &mut self.device,
                std::slice::from_ref(&flow),
                DEFAULT_MAX_BATCH,
                &mut sink,
                policy,
            ),
            None => {
                let (stats, result, fault) = drive_device_guarded(
                    &mut self.device,
                    std::slice::from_ref(&flow),
                    DEFAULT_MAX_BATCH,
                    &mut sink,
                );
                (stats, result, Vec::new(), fault)
            }
        };
        let last_done = sink.last_done;
        self.runtime.absorb(&stats);
        let label = format!("stream-{}", spec.stream);
        self.last_recoveries = recoveries;
        for r in &mut self.last_recoveries {
            r.member = label.clone();
        }
        if let Some(mut f) = fault {
            f.member = label;
            self.last_fault = Some(f);
        }
        result.map_err(crate::churn::ChurnError::Control)?;
        if let Some(first) = first_ts {
            self.windows.insert(spec.stream, (first, last_done));
        }
        Ok(())
    }

    /// The most recent crash-class fault ([`DeviceFault`]) the device
    /// tripped while a stream was running, if any. The session survives a
    /// device panic: frames checked before the trip keep their verdicts,
    /// the panic is isolated to its culprit frame (or publication), and
    /// the record stays here until a later stream trips again. The
    /// `member` field carries `stream-<id>` of the stream that tripped it.
    pub fn last_fault(&self) -> Option<&DeviceFault> {
        self.last_fault.as_ref()
    }

    /// Enable (or disable with `None`) checkpoint/restore recovery for
    /// stream runs: a device that crashes or stalls mid-stream is
    /// restored from its last checkpoint, replayed, the culprit frame
    /// skipped (checked as a [`netdebug_dataplane::DropReason::Faulted`]
    /// drop) and the stream finishes. Off by default — faults quarantine
    /// via [`NetDebug::last_fault`] exactly as before.
    pub fn set_recovery(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
    }

    /// Quarantine-rejoin records from the most recent stream run (empty
    /// when the run was clean or recovery is disabled). The `member`
    /// field carries `stream-<id>`.
    pub fn last_recoveries(&self) -> &[DeviceRecovery] {
        &self.last_recoveries
    }

    /// Configure the device's batched injection to shard across `shards`
    /// worker threads (see [`netdebug_hw::DeviceConfig::shards`]). Streams
    /// driven by [`NetDebug::run_stream`] pick this up on their next
    /// window.
    pub fn set_shards(&mut self, shards: usize) {
        self.device.set_shards(shards);
    }

    /// Switch the device's packet-execution engine (see
    /// [`netdebug_dataplane::Engine`]): the flat compiled engine is the
    /// default on every path; [`netdebug_dataplane::Engine::Reference`]
    /// selects the tree-walking oracle, which the parity property tests
    /// use for differential self-validation of whole NetDebug sessions.
    pub fn set_engine(&mut self, engine: netdebug_dataplane::Engine) {
        self.device.set_engine(engine);
    }

    /// The wall-clock window a completed stream spanned, in device cycles.
    pub fn stream_window(&self, stream: u16) -> Option<(u64, u64)> {
        self.windows.get(&stream).copied()
    }

    /// Event-loop runtime counters accumulated across every stream this
    /// session ran ([`RuntimeStats`]): coalesced-dispatch sizes,
    /// ready-queue depth, wheel cascades — surfaced alongside the
    /// device-level [`netdebug_hw::Device::sharded_batches`] and the data
    /// plane's `pool_workers`.
    pub fn runtime_stats(&self) -> RuntimeStats {
        self.runtime
    }

    /// Run several streams and produce a report.
    pub fn run_session(&mut self, specs: &[StreamSpec]) -> SessionReport {
        let start = self.device.now();
        for spec in specs {
            self.run_stream(spec);
        }
        let duration_cycles = self.device.now() - start;
        let mut streams: Vec<(u16, StreamStats)> = self
            .checker
            .streams()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        streams.sort_by_key(|(k, _)| *k);
        let violations = self.checker.violations().to_vec();
        SessionReport {
            program: self.device.compiled().program.name.clone(),
            backend: self.device.compiled().backend_name.clone(),
            passed: violations.is_empty() && streams.iter().all(|(_, s)| s.lost() == 0),
            streams,
            violations,
            duration_cycles,
        }
    }
}

/// The checker-facing sink of [`NetDebug::run_stream_churn`]'s event
/// loop: packets arrive in the runtime's deterministic order and go
/// straight to [`Checker::observe_processed`].
struct StreamSink<'a> {
    checker: &'a mut Checker,
    stream: u16,
    last_done: u64,
}

impl DeviceSink for StreamSink<'_> {
    fn on_packet(&mut self, _flow: u32, seq: u64, p: Processed) {
        self.last_done = self.last_done.max(p.done_at_cycle);
        self.checker.observe_processed(self.stream, seq, &p);
    }
}

/// Results of a test session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Program under test.
    pub program: String,
    /// Backend it was compiled with.
    pub backend: String,
    /// Per-stream statistics, ordered by stream id.
    pub streams: Vec<(u16, StreamStats)>,
    /// All violations, in detection order.
    pub violations: Vec<Violation>,
    /// Device cycles the session took.
    pub duration_cycles: u64,
    /// True when no violations and no unexplained loss.
    pub passed: bool,
}

impl core::fmt::Display for SessionReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "NetDebug session: program={} backend={} -> {}",
            self.program,
            self.backend,
            if self.passed { "PASS" } else { "FAIL" }
        )?;
        for (id, s) in &self.streams {
            writeln!(
                f,
                "  stream {id}: sent={} rx={} dropped={} lost={} ooo={} dup={} corrupt={} latency(min/avg/max cyc)={}/{:.1}/{}",
                s.sent,
                s.received,
                s.dropped,
                s.lost(),
                s.reordered,
                s.duplicates,
                s.corrupted,
                s.latency.min(),
                s.latency.mean(),
                s.latency.max(),
            )?;
        }
        for v in &self.violations {
            writeln!(f, "  violation: {v:?}")?;
        }
        Ok(())
    }
}

/// Convenience: build and run a one-stream session against a device.
pub fn quick_check(
    device: Device,
    template: Vec<u8>,
    count: u64,
    expect: Expectation,
) -> SessionReport {
    let mut nd = NetDebug::new(device);
    let spec = StreamSpec::simple(1, template, count, expect);
    nd.run_session(std::slice::from_ref(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::FieldSweep;
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn router_device(backend: &Backend) -> Device {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let mut dev = Device::deploy(backend, &ir).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dev
    }

    fn frame(version: u8) -> Vec<u8> {
        let mut f = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
        .udp(1, 2)
        .build();
        f[14] = (version << 4) | 5;
        f
    }

    #[test]
    fn passing_session_on_reference() {
        let mut nd = NetDebug::new(router_device(&Backend::reference()));
        let report = nd.run_session(&[
            StreamSpec {
                stream: 1,
                template: frame(4),
                count: 50,
                rate_pps: Some(5e6),
                as_port: 0,
                sweeps: vec![],
                expect: Expectation::Forward { port: Some(1) },
            },
            StreamSpec {
                stream: 2,
                template: frame(5), // malformed: must be dropped
                count: 50,
                rate_pps: None,
                as_port: 0,
                sweeps: vec![],
                expect: Expectation::Drop,
            },
        ]);
        assert!(report.passed, "{report}");
        assert_eq!(report.streams[0].1.received, 50);
        assert_eq!(report.streams[1].1.dropped, 50);
        assert!(report.duration_cycles > 0);
        let text = report.to_string();
        assert!(text.contains("PASS"));
    }

    #[test]
    fn sdnet_session_catches_the_reject_bug() {
        // The paper's experiment end-to-end: deploy on buggy SDNet,
        // inject malformed packets flagged EXPECT_DROP, watch the checker
        // light up on the very first packet.
        let mut nd = NetDebug::new(router_device(&Backend::sdnet_2018()));
        let report = nd.run_session(&[StreamSpec {
            stream: 7,
            template: frame(5),
            count: 10,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Drop,
        }]);
        assert!(!report.passed);
        assert!(
            matches!(
                report.violations[0],
                Violation::ForwardedButExpectedDrop {
                    stream: 7,
                    seq: 0,
                    ..
                }
            ),
            "detected on the first packet: {:?}",
            report.violations[0]
        );
        assert_eq!(
            report.violations.len(),
            10,
            "every malformed packet flagged"
        );
    }

    #[test]
    fn latency_measured_in_device_cycles() {
        let mut nd = NetDebug::new(router_device(&Backend::reference()));
        // Paced well below capacity so no queueing noise appears.
        let report = nd.run_session(&[StreamSpec {
            stream: 1,
            template: frame(4),
            count: 20,
            rate_pps: Some(1e6),
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Forward { port: Some(1) },
        }]);
        let (_, stats) = &report.streams[0];
        // Pipeline-only latency: no MAC contribution on the internal path.
        // The latency model gives parse(3+4) + table(5) + deparse + fixed.
        assert!(stats.latency.min() > 0);
        assert!(stats.latency.min() < 100, "{}", stats.latency.min());
        assert_eq!(
            stats.latency.min(),
            stats.latency.max(),
            "deterministic pipeline at low load"
        );
    }

    #[test]
    fn sweeps_generate_distinct_packets() {
        let mut nd = NetDebug::new(router_device(&Backend::reference()));
        // Sweep the last dst octet: 10.0.0.9, .10, .11 ... all inside 10/8.
        let report = nd.run_session(&[StreamSpec {
            stream: 3,
            template: frame(4),
            count: 20,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![FieldSweep {
                offset: 14 + 19,
                step: 1,
            }],
            expect: Expectation::Forward { port: Some(1) },
        }]);
        assert!(report.passed, "{report}");
    }

    #[test]
    fn stream_recovers_from_a_mid_stream_crash() {
        use netdebug_hw::FaultSpec;
        let mut dev = router_device(&Backend::reference());
        dev.arm_fault(FaultSpec::PanicAfterN { n: 12 });
        let mut nd = NetDebug::new(dev);
        nd.set_recovery(Some(RecoveryPolicy {
            checkpoint_interval: 8,
            ..RecoveryPolicy::default()
        }));
        let spec = StreamSpec {
            stream: 4,
            template: frame(4),
            count: 30,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Any,
        };
        nd.run_stream(&spec);
        assert!(nd.last_fault().is_none(), "{:?}", nd.last_fault());
        let recs = nd.last_recoveries();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].member, "stream-4");
        assert_eq!(recs[0].fault, "panic-after-n");
        assert_eq!(recs[0].culprit.as_ref().unwrap().seq, 12);
        let stats = nd.checker().streams().get(&4).unwrap();
        assert_eq!(stats.sent, 30, "every frame of the stream was checked");
        assert_eq!(stats.received, 29, "all but the skipped culprit forward");
        assert_eq!(stats.dropped, 1, "the culprit is checked as a drop");
        assert_eq!(stats.lost(), 0, "recovery loses nothing");
    }

    #[test]
    fn quick_check_helper() {
        let report = quick_check(
            router_device(&Backend::reference()),
            frame(4),
            5,
            Expectation::Forward { port: Some(1) },
        );
        assert!(report.passed);
    }
}
