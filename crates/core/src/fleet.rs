//! Multi-device differential fleets.
//!
//! The N-backend generalisation of [`crate::differential`]: one generated
//! window of test packets is fed — **concurrently, on the fleet's
//! persistent [`FleetRuntime`] worker set** — to every deployment in the
//! fleet, and the observed verdicts are diffed against the fleet's
//! reference member (the first one added). This is the scenario the
//! paper's comparison use-case gestures at and Parasol-style parameter
//! sweeps need: the same stimulus against a reference build, a vendor
//! toolchain, a patched toolchain and any number of fault-injected
//! variants, in one run.
//!
//! Each device is an independent simulated board, so fleet execution is
//! embarrassingly parallel; the runtime drives each member as a
//! virtual-time flow (churn ops become seq-keyed triggers, paced frames
//! coalesce per due instant) and results are joined and diffed in member
//! order, making reports deterministic regardless of worker count. Each
//! member's tables carry their own compiled lookup indexes (published
//! per epoch, see `netdebug_dataplane::LookupIndex`), so churned fleet
//! runs ([`DifferentialFleet::run_churn`]) recompile per member and per
//! publication — divergence between members is always a semantic
//! difference, never a shared-index artefact.

use crate::churn::{ChurnError, ChurnSchedule};
use crate::differential::{outcome_divergence, stages_reached};
use crate::generator::{Generator, StreamSpec};
use crate::probes::Probe;
use crate::runtime::{
    describe_panic, CulpritFrame, DeviceFault, DeviceRecovery, DeviceSink, DeviceTask,
    FleetRuntime, FlowRun, RecoveryPolicy, RuntimeStats,
};
use netdebug_dataplane::DropReason;
use netdebug_hw::{Device, Outcome, Processed};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Errors a fleet-level API can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A churn run failed (rejected op or unreachable window).
    Churn(ChurnError),
    /// The operation needs at least one fleet member.
    EmptyFleet,
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Churn(e) => write!(f, "{e}"),
            FleetError::EmptyFleet => write!(f, "the fleet has no members"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ChurnError> for FleetError {
    fn from(e: ChurnError) -> Self {
        FleetError::Churn(e)
    }
}

/// One divergence between a fleet member and the reference device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDivergence {
    /// Index of the packet (or probe) that exposed it.
    pub index: usize,
    /// Label of the diverging member.
    pub member: String,
    /// What differed, reference vs member.
    pub detail: String,
    /// Internal stages the reference traversed (full stage set on the
    /// probe path, the last stage reached on the window path).
    pub stages_reference: Vec<String>,
    /// Internal stages the diverging member traversed.
    pub stages_member: Vec<String>,
}

/// Result of running one stimulus across a whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Label of the reference member all others were diffed against.
    pub reference: String,
    /// All member labels, in fleet order.
    pub members: Vec<String>,
    /// Packets (or probes) in the stimulus.
    pub packets: usize,
    /// Packets on which **every** member agreed with the reference.
    pub agreements: usize,
    /// All divergences, ordered by packet index then member order.
    pub divergences: Vec<FleetDivergence>,
    /// Members that crashed mid-run (crash-class faults). Each record
    /// carries the isolated culprit frame or publication; the member was
    /// quarantined from diffing, and every healthy member's observations
    /// are unaffected.
    pub faults: Vec<DeviceFault>,
    /// Members that crashed or stalled but were **recovered**: restored
    /// from their last checkpoint, replayed, the culprit frame skipped
    /// (booked as a [`netdebug_dataplane::DropReason::Faulted`] drop) and
    /// re-admitted to the diff. A recovered member appears in the final
    /// report like any healthy member — the skipped culprit is excluded
    /// from outcome comparison — and recoveries do **not** break
    /// [`FleetReport::equivalent`].
    pub recoveries: Vec<DeviceRecovery>,
}

impl FleetReport {
    /// True when every member behaved identically to the reference and no
    /// member crashed.
    pub fn equivalent(&self) -> bool {
        self.divergences.is_empty() && self.faults.is_empty()
    }

    /// Labels of members that diverged at least once.
    pub fn diverging_members(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for d in &self.divergences {
            if !out.contains(&d.member.as_str()) {
                out.push(&d.member);
            }
        }
        out
    }

    /// Labels of members that crashed (were quarantined) during the run.
    pub fn faulted_members(&self) -> Vec<&str> {
        self.faults.iter().map(|f| f.member.as_str()).collect()
    }

    /// Labels of members that were recovered (checkpoint-restored,
    /// culprit skipped, re-admitted to the diff) during the run.
    pub fn recovered_members(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.recoveries {
            if !out.contains(&r.member.as_str()) {
                out.push(&r.member);
            }
        }
        out
    }
}

/// Result of [`DifferentialFleet::bisect_churn`]: which churn epoch first
/// makes the fleet diverge (or crash), found by binary search over the
/// schedule's epoch axis instead of one run per epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnBisection {
    /// Window index of the first churn epoch whose publication makes the
    /// fleet fail. `None` when the full schedule passes, or when the
    /// fleet fails with no churn at all (see `fails_without_churn`).
    pub first_epoch: Option<u64>,
    /// True when the fleet already fails with every churn op removed —
    /// the failure is in the traffic, not the churn.
    pub fails_without_churn: bool,
    /// Fleet runs the bisection spent (`<= 2 + ceil(log2(epochs))`,
    /// versus `epochs + 1` for a linear scan).
    pub probes: u64,
    /// Distinct churn epochs in the schedule.
    pub epochs_total: u64,
    /// The report that pinned the verdict: the first failing prefix's
    /// report, or the full clean run's when nothing fails.
    pub report: FleetReport,
}

struct FleetMember {
    label: String,
    device: Device,
}

/// One member's per-packet observations: the outcome plus the stage set
/// used to localise divergences.
type MemberObservations = Vec<(Outcome, Vec<String>)>;

/// [`DeviceSink`] that records the window-path observation per packet:
/// the outcome and the last stage the member's pipeline reached.
struct FleetSink {
    obs: MemberObservations,
}

impl DeviceSink for FleetSink {
    fn on_packet(&mut self, _flow: u32, _seq: u64, p: Processed) {
        self.obs.push((p.outcome, vec![p.last_stage]));
    }
}

/// A set of deployed devices that receive identical stimuli.
///
/// The first member added is the **reference** (conventionally the
/// [`netdebug_hw::Backend::reference`] build); every other member is
/// diffed against it. Members execute on a persistent [`FleetRuntime`]
/// worker set that survives across windows and runs.
#[derive(Default)]
pub struct DifferentialFleet {
    members: Vec<FleetMember>,
    runtime: FleetRuntime,
    last_stats: RuntimeStats,
    recovery: Option<RecoveryPolicy>,
}

impl DifferentialFleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a deployed device under a report label. The first member added
    /// becomes the reference.
    pub fn add(&mut self, label: impl Into<String>, device: Device) -> &mut Self {
        self.members.push(FleetMember {
            label: label.into(),
            device,
        });
        self
    }

    /// Builder-style [`DifferentialFleet::add`].
    pub fn with(mut self, label: impl Into<String>, device: Device) -> Self {
        self.add(label, device);
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member labels in fleet order.
    pub fn labels(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.label.as_str()).collect()
    }

    /// Mutable access to a member's device (control-plane configuration —
    /// e.g. installing the same routes on every member).
    pub fn device_mut(&mut self, label: &str) -> Option<&mut Device> {
        self.members
            .iter_mut()
            .find(|m| m.label == label)
            .map(|m| &mut m.device)
    }

    /// Install the same table entries on every member via a closure.
    pub fn configure_all(
        &mut self,
        mut f: impl FnMut(&mut Device) -> Result<(), netdebug_dataplane::ControlError>,
    ) -> Result<(), netdebug_dataplane::ControlError> {
        for m in &mut self.members {
            f(&mut m.device)?;
        }
        Ok(())
    }

    /// Number of OS threads the fleet's runtime targets.
    pub fn runtime_workers(&self) -> usize {
        self.runtime.target_workers()
    }

    /// Retarget the fleet's persistent runtime at `workers` OS threads
    /// (clamped to at least 1). The existing worker set is joined and the
    /// next run spawns at most `workers` fresh threads; outputs are
    /// bit-identical at any setting.
    pub fn set_runtime_workers(&mut self, workers: usize) {
        if workers.max(1) != self.runtime.target_workers() {
            self.runtime = FleetRuntime::new(workers);
            self.runtime.set_recovery(self.recovery);
        }
    }

    /// Enable (or disable with `None`) checkpoint/restore recovery on the
    /// fleet's window path. With a policy set, a member that crashes or
    /// stalls mid-run is restored from its last checkpoint, replayed, its
    /// culprit frame skipped and the member re-admitted to the diff; the
    /// recovery records land in [`FleetReport::recoveries`]. The setting
    /// survives [`DifferentialFleet::set_runtime_workers`]. Off by
    /// default: faults quarantine exactly as before.
    pub fn set_recovery(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
        self.runtime.set_recovery(policy);
    }

    /// The fleet's current recovery policy (`None` when recovery is off).
    pub fn recovery(&self) -> Option<RecoveryPolicy> {
        self.recovery
    }

    /// Pool threads the runtime has actually spawned so far (they are
    /// created lazily and reused across windows, like
    /// `Device::pool_workers` for shards).
    pub fn runtime_pool_workers(&self) -> usize {
        self.runtime.pool_workers()
    }

    /// Observability counters from the most recent fleet run, summed over
    /// members: scheduled instants, coalesced-batch sizes, ready-queue
    /// depth and wheel cascades.
    pub fn runtime_stats(&self) -> RuntimeStats {
        self.last_stats
    }

    /// Generate **one** window from `spec` and feed the identical frames
    /// to every device concurrently (each member is a task on the fleet's
    /// persistent runtime, running the batched internal path). Outcomes
    /// are joined in member order and every member's packet-by-packet
    /// behaviour is diffed against the reference; the member's last-stage
    /// taps localise any divergence.
    pub fn run_window(&mut self, spec: &StreamSpec) -> FleetReport {
        self.run_churn(spec, &crate::churn::ChurnSchedule::new(), spec.count.max(1))
            .expect("an empty churn schedule cannot fail")
    }

    /// Run a churned stream across the fleet: the stimulus is cut into
    /// `window`-packet windows and, before window `w`, every member
    /// applies the identical [`crate::churn::ChurnSchedule`] ops keyed to
    /// `w` through its epoch-snapshot control plane — so rule churn lands
    /// at the same stream offset on every member and their verdicts stay
    /// comparable packet by packet. Members run concurrently on the
    /// fleet's persistent [`FleetRuntime`]: each member becomes one
    /// virtual-time flow whose churn ops are seq-keyed triggers, so churn
    /// epochs land at the same scheduled virtual instant on every device
    /// regardless of worker count. A schedule keying an op to a window
    /// the stream never runs is rejected up front
    /// ([`crate::churn::ChurnError::UnreachableWindow`]); the first
    /// rejected control-plane op (in member order) aborts the run.
    pub fn run_churn(
        &mut self,
        spec: &StreamSpec,
        schedule: &crate::churn::ChurnSchedule,
        window: u64,
    ) -> Result<FleetReport, crate::churn::ChurnError> {
        let window = window.max(1);
        schedule.validate(spec.count.div_ceil(window))?;
        let gap = self
            .members
            .first()
            .map(|m| Generator::gap_cycles(spec, m.device.config().core_clock_hz))
            .unwrap_or(0);
        // One generator builds every window: all members see identical
        // frames at identical stream offsets. Windows are stamped from
        // cycle 0, exactly as the per-window loop always built them.
        let mut generator = Generator::new();
        let mut frames = Vec::with_capacity(spec.count as usize);
        let mut seq = 0u64;
        while seq < spec.count {
            let n = window.min(spec.count - seq);
            frames.extend(generator.build_batch(spec, seq, n, 0, gap));
            seq += n;
        }
        let frames = Arc::new(frames);
        // Window-keyed churn ops become seq-keyed triggers on every
        // member's flow (stable sort keeps schedule order per window).
        let mut triggers: Vec<(u64, crate::churn::ChurnOp)> = schedule
            .ops
            .iter()
            .map(|(w, op)| (w * window, op.clone()))
            .collect();
        triggers.sort_by_key(|(s, _)| *s);

        let members = std::mem::take(&mut self.members);
        let mut labels = Vec::with_capacity(members.len());
        let tasks: Vec<DeviceTask<FleetSink>> = members
            .into_iter()
            .map(|m| {
                labels.push(m.label);
                let flow = FlowRun {
                    id: u32::from(spec.stream),
                    as_port: spec.as_port,
                    frames: Arc::clone(&frames),
                    origin: m.device.now(),
                    gap,
                    triggers: triggers.clone(),
                };
                DeviceTask {
                    device: m.device,
                    flows: vec![flow],
                    sink: FleetSink {
                        obs: Vec::with_capacity(spec.count as usize),
                    },
                }
            })
            .collect();
        let done = self.runtime.run(tasks);

        // Devices come back in task order — restore them (and the labels)
        // before deciding pass/fail, so a churn error never loses a member.
        // A member that crashed mid-run is quarantined: its fault record
        // (culprit frame attached) joins the report and its observations
        // are excluded from diffing; healthy members are diffed as usual.
        let mut per_member: Vec<Option<MemberObservations>> = Vec::with_capacity(done.len());
        let mut faults: Vec<DeviceFault> = Vec::new();
        let mut recoveries: Vec<DeviceRecovery> = Vec::new();
        let mut stats = RuntimeStats::default();
        let mut first_err: Option<netdebug_dataplane::ControlError> = None;
        for (label, d) in labels.into_iter().zip(done) {
            stats.absorb(&d.stats);
            for mut r in d.recoveries {
                r.member = label.clone();
                recoveries.push(r);
            }
            if let Some(mut f) = d.fault {
                f.member = label.clone();
                faults.push(f);
                per_member.push(None);
            } else {
                match d.result {
                    Ok(()) => per_member.push(Some(d.sink.obs)),
                    Err(e) => {
                        per_member.push(None);
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            self.members.push(FleetMember {
                label,
                device: d.device,
            });
        }
        self.last_stats = stats;
        if let Some(e) = first_err {
            return Err(e.into());
        }
        let packets = per_member
            .iter()
            .find_map(|r| r.as_ref().map(|r| r.len()))
            .unwrap_or(0);
        Ok(self.diff(per_member, packets, faults, recoveries))
    }

    /// Run a probe set through every device concurrently and diff, with
    /// full per-probe stage sets (the probe path injects one packet at a
    /// time so each probe's tap delta is attributable). Probe jobs run on
    /// the same persistent runtime workers as the window path.
    pub fn diff_probes(&mut self, probes: &[Probe]) -> FleetReport {
        let probes_shared: Arc<Vec<Probe>> = Arc::new(probes.to_vec());
        let members = std::mem::take(&mut self.members);
        let mut labels = Vec::with_capacity(members.len());
        let jobs: Vec<_> = members
            .into_iter()
            .map(|m| {
                labels.push(m.label);
                let probes = Arc::clone(&probes_shared);
                let mut device = m.device;
                move || {
                    // Each probe runs under `catch_unwind`: a member that
                    // crashes on probe `i` is quarantined with probe `i`
                    // as its culprit, and the device (in whatever state
                    // the panic left it) still comes back to the fleet.
                    let mut obs: MemberObservations = Vec::with_capacity(probes.len());
                    let mut fault: Option<DeviceFault> = None;
                    for (i, p) in probes.iter().enumerate() {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            stages_reached(&mut device, 0, &p.data)
                        }));
                        match out {
                            Ok(o) => obs.push(o),
                            Err(payload) => {
                                let (fault_id, stage, detail) = describe_panic(payload.as_ref());
                                fault = Some(DeviceFault {
                                    member: String::new(),
                                    fault: fault_id,
                                    stage,
                                    detail,
                                    packets_delivered: i as u64,
                                    culprit: Some(CulpritFrame {
                                        flow: 0,
                                        seq: i as u64,
                                        port: 0,
                                        bytes: p.data.clone(),
                                        prior_stage: None,
                                    }),
                                    trigger: None,
                                });
                                break;
                            }
                        }
                    }
                    (device, obs, fault)
                }
            })
            .collect();
        let results = self.runtime.execute(jobs);
        let mut per_member: Vec<Option<MemberObservations>> = Vec::with_capacity(results.len());
        let mut faults: Vec<DeviceFault> = Vec::new();
        for (label, res) in labels.into_iter().zip(results) {
            // The job catches every probe panic itself, so an escaping
            // panic is harness breakage — propagate it.
            let (device, obs, fault) = match res {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            if let Some(mut f) = fault {
                f.member = label.clone();
                faults.push(f);
                per_member.push(None);
            } else {
                per_member.push(Some(obs));
            }
            self.members.push(FleetMember { label, device });
        }
        self.diff(per_member, probes.len(), faults, Vec::new())
    }

    /// Diff joined per-member observations against the reference, in
    /// member order (deterministic by construction). `None` observations
    /// belong to quarantined (crashed) members and are skipped; when the
    /// reference itself crashed no diffing is possible and only the fault
    /// records speak. A recovered member's skipped culprit frame (booked
    /// as a [`DropReason::Faulted`] drop by the recovery path) is excluded
    /// from outcome comparison — the recovery record already accounts for
    /// it — so a recovered member whose post-skip verdicts match the
    /// reference diffs clean.
    fn diff(
        &self,
        per_member: Vec<Option<MemberObservations>>,
        packets: usize,
        faults: Vec<DeviceFault>,
        recoveries: Vec<DeviceRecovery>,
    ) -> FleetReport {
        let members: Vec<String> = self.members.iter().map(|m| m.label.clone()).collect();
        let reference = members.first().cloned().unwrap_or_default();
        let mut divergences = Vec::new();
        let mut agreements = 0usize;
        if let Some((Some(ref_results), rest)) = per_member.split_first() {
            for i in 0..packets {
                let (ref_out, ref_stages) = &ref_results[i];
                let mut clean = true;
                for (m, results) in rest.iter().enumerate() {
                    let Some(results) = results else { continue };
                    let (out, stages) = &results[i];
                    if matches!(
                        out,
                        Outcome::Dropped {
                            reason: DropReason::Faulted
                        }
                    ) {
                        continue;
                    }
                    if let Some(detail) = outcome_divergence(ref_out, out, ref_stages, stages) {
                        clean = false;
                        divergences.push(FleetDivergence {
                            index: i,
                            member: members[m + 1].clone(),
                            detail,
                            stages_reference: ref_stages.clone(),
                            stages_member: stages.clone(),
                        });
                    }
                }
                if clean {
                    agreements += 1;
                }
            }
        }
        FleetReport {
            reference,
            members,
            packets,
            agreements,
            divergences,
            faults,
            recoveries,
        }
    }

    /// Binary-search the churn-epoch axis for the first epoch whose
    /// publication makes the fleet fail (diverge from the reference or
    /// crash a member) — ROADMAP hook (e).
    ///
    /// Every probe replays the identical stimulus against clones of the
    /// current members with the schedule truncated to its first `k`
    /// distinct epochs, so the verdict is a pure function of the epoch
    /// prefix. The fleet's devices are restored to their pre-call state
    /// afterwards on every path, success or error. Probe cost is
    /// `2 + ceil(log2(epochs))` runs against `epochs + 1` for the linear
    /// scan it replaces.
    pub fn bisect_churn(
        &mut self,
        spec: &StreamSpec,
        schedule: &ChurnSchedule,
        window: u64,
    ) -> Result<ChurnBisection, FleetError> {
        if self.members.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        let originals: Vec<FleetMember> = self
            .members
            .iter()
            .map(|m| FleetMember {
                label: m.label.clone(),
                device: m.device.clone(),
            })
            .collect();
        let out = self.bisect_churn_inner(spec, schedule, window, &originals);
        // Probes leave the members churned by whatever prefix ran last;
        // hand back the devices the caller gave us.
        self.members = originals;
        out
    }

    /// One bisection probe: reset the members to `originals` and run the
    /// schedule truncated to its first `k` distinct epochs.
    fn probe_prefix(
        &mut self,
        originals: &[FleetMember],
        spec: &StreamSpec,
        schedule: &ChurnSchedule,
        epochs: &[u64],
        k: usize,
        window: u64,
    ) -> Result<FleetReport, ChurnError> {
        let allowed: std::collections::BTreeSet<u64> = epochs[..k].iter().copied().collect();
        let prefix = ChurnSchedule {
            ops: schedule
                .ops
                .iter()
                .filter(|(w, _)| allowed.contains(w))
                .cloned()
                .collect(),
        };
        self.members = originals
            .iter()
            .map(|m| FleetMember {
                label: m.label.clone(),
                device: m.device.clone(),
            })
            .collect();
        self.run_churn(spec, &prefix, window)
    }

    fn bisect_churn_inner(
        &mut self,
        spec: &StreamSpec,
        schedule: &ChurnSchedule,
        window: u64,
        originals: &[FleetMember],
    ) -> Result<ChurnBisection, FleetError> {
        let epochs: Vec<u64> = {
            let set: std::collections::BTreeSet<u64> =
                schedule.ops.iter().map(|(w, _)| *w).collect();
            set.into_iter().collect()
        };
        let n = epochs.len();
        let mut probes = 0u64;
        // Full schedule first: a clean fleet needs exactly one probe.
        probes += 1;
        let full = self.probe_prefix(originals, spec, schedule, &epochs, n, window)?;
        if full.equivalent() {
            return Ok(ChurnBisection {
                first_epoch: None,
                fails_without_churn: false,
                probes,
                epochs_total: n as u64,
                report: full,
            });
        }
        // No churn at all: if the fleet still fails, no epoch is to blame.
        probes += 1;
        let bare = self.probe_prefix(originals, spec, schedule, &epochs, 0, window)?;
        if !bare.equivalent() {
            return Ok(ChurnBisection {
                first_epoch: None,
                fails_without_churn: true,
                probes,
                epochs_total: n as u64,
                report: bare,
            });
        }
        // Invariant: prefix(lo - 1) passes, prefix(hi) fails. Find the
        // smallest failing prefix length.
        let mut lo = 1usize;
        let mut hi = n;
        let mut failing = full;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            let report = self.probe_prefix(originals, spec, schedule, &epochs, mid, window)?;
            if report.equivalent() {
                lo = mid + 1;
            } else {
                failing = report;
                hi = mid;
            }
        }
        Ok(ChurnBisection {
            first_epoch: Some(epochs[lo - 1]),
            fails_without_churn: false,
            probes,
            epochs_total: n as u64,
            report: failing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Expectation;
    use crate::probes::parser_path_probes;
    use netdebug_hw::Backend;
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn router(backend: &Backend) -> Device {
        let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dev
    }

    fn frame(version: u8) -> Vec<u8> {
        let mut f = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
        .udp(1, 2)
        .build();
        f[14] = (version << 4) | 5;
        f
    }

    fn three_member_fleet() -> DifferentialFleet {
        DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("sdnet-fixed", router(&Backend::sdnet_fixed()))
            .with("sdnet-2018", router(&Backend::sdnet_2018()))
    }

    #[test]
    fn fleet_catches_the_reject_bug_and_exonerates_the_fix() {
        let mut fleet = three_member_fleet();
        assert_eq!(fleet.len(), 3);
        // Malformed version-5 packets: the reference and the fixed SDNet
        // drop them, the 2018 SDNet silently forwards them.
        let report = fleet.run_window(&StreamSpec::simple(1, frame(5), 12, Expectation::Any));
        assert_eq!(report.packets, 12);
        assert_eq!(report.reference, "reference");
        assert!(!report.equivalent());
        assert_eq!(report.agreements, 0, "every packet exposes the bug");
        assert_eq!(report.diverging_members(), vec!["sdnet-2018"]);
        for d in &report.divergences {
            assert_eq!(d.member, "sdnet-2018");
            assert!(d.detail.contains("forwards"), "{}", d.detail);
        }
    }

    #[test]
    fn fleet_agrees_on_well_formed_traffic() {
        let mut fleet = three_member_fleet();
        let report = fleet.run_window(&StreamSpec::simple(
            2,
            frame(4),
            20,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(report.equivalent(), "{:#?}", report.divergences);
        assert_eq!(report.agreements, 20);
    }

    #[test]
    fn fleet_probe_diffing_localises_reject_paths() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        let mut fleet = three_member_fleet();
        let report = fleet.diff_probes(&probes);
        assert!(!report.equivalent());
        for d in &report.divergences {
            assert!(
                probes[d.index].hits_reject,
                "only reject-path probes diverge: {d:?}"
            );
            assert_eq!(d.member, "sdnet-2018");
        }
    }

    #[test]
    fn sharded_members_report_identically() {
        // Fleet reports are deterministic even when members themselves
        // shard their batches across threads.
        let mut plain = three_member_fleet();
        let mut sharded = three_member_fleet();
        for label in ["reference", "sdnet-fixed", "sdnet-2018"] {
            sharded.device_mut(label).unwrap().set_shards(4);
        }
        let spec = StreamSpec::simple(3, frame(5), 32, Expectation::Any);
        let a = plain.run_window(&spec);
        let b = sharded.run_window(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_workers_are_reused_across_windows() {
        // Like `pool_workers` for shards: the fleet's worker set spawns
        // lazily on first use and is reused by every subsequent window —
        // no per-window thread churn.
        let mut fleet = three_member_fleet();
        fleet.set_runtime_workers(3);
        assert_eq!(fleet.runtime_workers(), 3);
        assert_eq!(fleet.runtime_pool_workers(), 0, "workers spawn lazily");
        let spec = StreamSpec::simple(1, frame(5), 8, Expectation::Any);
        fleet.run_window(&spec);
        let spawned = fleet.runtime_pool_workers();
        assert_eq!(spawned, 3, "three members wake all three workers");
        for _ in 0..4 {
            fleet.run_window(&spec);
        }
        assert_eq!(
            fleet.runtime_pool_workers(),
            spawned,
            "repeat windows reuse the same threads"
        );
        let stats = fleet.runtime_stats();
        assert_eq!(stats.packets, 3 * 8, "last run drove 8 packets per member");
        assert!(stats.dispatches >= 3, "at least one dispatch per member");
    }

    #[test]
    fn worker_counts_do_not_change_fleet_reports() {
        // The determinism contract: identical fleets, worker counts 1..=4,
        // byte-identical reports (verdicts, stages, divergence order).
        let spec = StreamSpec::simple(3, frame(5), 24, Expectation::Any);
        let schedule = crate::churn::ChurnSchedule::new().before_window(
            1,
            crate::churn::ChurnOp::Clear {
                table: "ipv4_lpm".into(),
            },
        );
        let mut reference: Option<FleetReport> = None;
        for workers in 1..=4 {
            let mut fleet = three_member_fleet();
            fleet.set_runtime_workers(workers);
            let report = fleet.run_churn(&spec, &schedule, 8).unwrap();
            match &reference {
                None => reference = Some(report),
                Some(r) => assert_eq!(r, &report, "workers={workers} diverged"),
            }
        }
    }

    #[test]
    fn empty_and_single_member_fleets_are_trivially_equivalent() {
        let mut empty = DifferentialFleet::new();
        assert!(empty.is_empty());
        let spec = StreamSpec::simple(1, frame(4), 4, Expectation::Any);
        assert!(empty.run_window(&spec).equivalent());
        let mut solo = DifferentialFleet::new().with("only", router(&Backend::reference()));
        let report = solo.run_window(&spec);
        assert!(report.equivalent());
        assert_eq!(report.agreements, 4);
    }

    #[test]
    fn faulty_member_is_quarantined_with_exact_culprit() {
        use netdebug_hw::FaultSpec;
        // 16 devices, one armed to panic on its 6th frame (seq 5). The
        // crash must be isolated to exactly that frame while the other 15
        // members stay healthy and agree on every packet.
        let mut fleet = DifferentialFleet::new();
        fleet.add("reference", router(&Backend::reference()));
        for i in 0..15 {
            let mut dev = router(&Backend::sdnet_fixed());
            if i == 6 {
                dev.arm_fault(FaultSpec::PanicAfterN { n: 5 });
            }
            fleet.add(format!("member-{i}"), dev);
        }
        assert_eq!(fleet.len(), 16);
        let report = fleet.run_window(&StreamSpec::simple(
            1,
            frame(4),
            12,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(!report.equivalent(), "a crashed member is not equivalence");
        assert_eq!(report.faulted_members(), vec!["member-6"]);
        let f = &report.faults[0];
        assert_eq!(f.fault, "panic-after-n");
        assert_eq!(f.stage, "ingress");
        assert_eq!(f.packets_delivered, 5, "five frames delivered cleanly");
        let culprit = f.culprit.as_ref().expect("culprit frame isolated");
        assert_eq!(culprit.seq, 5, "the 6th frame is the culprit");
        assert!(!culprit.bytes.is_empty(), "culprit carries its bytes");
        // The quarantine is surgical: all 15 healthy members agree with
        // the reference on all 12 packets, exactly as in a fault-free run.
        assert!(report.divergences.is_empty(), "{:#?}", report.divergences);
        assert_eq!(report.agreements, 12);
        assert_eq!(fleet.len(), 16, "the crashed device returns to the fleet");
    }

    #[test]
    fn publication_fault_is_attributed_to_its_trigger() {
        use netdebug_hw::FaultSpec;
        let mut faulty = router(&Backend::sdnet_fixed());
        faulty.arm_fault(FaultSpec::FailPublication);
        let mut fleet = DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("flaky-driver", faulty);
        // Traffic alone is fine; the window-1 churn op goes through the
        // modeled vendor driver and crashes the armed member.
        let spec = StreamSpec::simple(1, frame(4), 16, Expectation::Any);
        let schedule = crate::churn::ChurnSchedule::new().before_window(
            1,
            crate::churn::ChurnOp::Lpm {
                table: "ipv4_lpm".into(),
                prefix: 0x1400_0000,
                prefix_len: 8,
                action: "ipv4_forward".into(),
                args: vec![0xCC, 3],
            },
        );
        let report = fleet.run_churn(&spec, &schedule, 8).unwrap();
        assert_eq!(report.faulted_members(), vec!["flaky-driver"]);
        let f = &report.faults[0];
        assert_eq!(f.fault, "fail-publication");
        assert_eq!(f.stage, "driver");
        let trigger = f.trigger.as_ref().expect("publication names its trigger");
        assert!(
            trigger.contains("seq 8"),
            "window 1 starts at seq 8: {trigger}"
        );
        assert!(trigger.contains("Lpm"), "{trigger}");
    }

    #[test]
    fn recovery_storm_readmits_every_member() {
        use netdebug_hw::FaultSpec;
        // The acceptance storm: 16 members, one armed to panic, one to
        // stall and one with a transient publication fault. With recovery
        // enabled every member must appear in the final diff — three
        // recoveries, zero permanent quarantines — and the healthy
        // members' verdicts must be untouched.
        let spec = StreamSpec::simple(1, frame(4), 48, Expectation::Forward { port: Some(1) });
        let schedule = crate::churn::ChurnSchedule::new().before_window(
            1,
            crate::churn::ChurnOp::Lpm {
                table: "ipv4_lpm".into(),
                prefix: 0x1400_0000,
                prefix_len: 8,
                action: "ipv4_forward".into(),
                args: vec![0xCC, 3],
            },
        );
        let mut fleet = DifferentialFleet::new();
        fleet.add("reference", router(&Backend::reference()));
        for i in 0..15 {
            let mut dev = router(&Backend::sdnet_fixed());
            match i {
                3 => dev.arm_fault(FaultSpec::PanicAfterN { n: 17 }),
                7 => dev.arm_fault(FaultSpec::Stall { after: 29 }),
                11 => dev.arm_fault(FaultSpec::TransientPublication { fail_first: 2 }),
                _ => {}
            }
            fleet.add(format!("member-{i}"), dev);
        }
        fleet.set_recovery(Some(RecoveryPolicy::default()));
        assert_eq!(fleet.recovery(), Some(RecoveryPolicy::default()));
        let report = fleet.run_churn(&spec, &schedule, 16).unwrap();
        assert!(report.faults.is_empty(), "{:#?}", report.faults);
        assert!(report.divergences.is_empty(), "{:#?}", report.divergences);
        assert!(report.equivalent(), "recoveries do not break equivalence");
        assert_eq!(report.packets, 48);
        assert_eq!(report.agreements, 48, "healthy verdicts are untouched");
        assert_eq!(
            report.recovered_members(),
            vec!["member-3", "member-7", "member-11"]
        );
        assert_eq!(report.recoveries.len(), 3);
        let by_member = |label: &str| {
            report
                .recoveries
                .iter()
                .find(|r| r.member == label)
                .unwrap()
        };
        let panic_rec = by_member("member-3");
        assert_eq!(panic_rec.fault, "panic-after-n");
        assert_eq!(panic_rec.stage, "ingress");
        assert_eq!(panic_rec.culprit.as_ref().unwrap().seq, 17);
        let stall_rec = by_member("member-7");
        assert_eq!(stall_rec.fault, "stall");
        assert_eq!(stall_rec.stage, "watchdog");
        assert_eq!(stall_rec.culprit.as_ref().unwrap().seq, 29);
        let pub_rec = by_member("member-11");
        assert_eq!(pub_rec.fault, "transient-publication");
        assert_eq!(pub_rec.stage, "driver");
        assert!(pub_rec.culprit.is_none(), "absorbed before any frame died");
        assert_eq!(fleet.len(), 16, "every member returns to the fleet");
    }

    #[test]
    fn recovered_member_matches_fault_free_run_except_culprit() {
        use netdebug_hw::FaultSpec;
        // Digest-level check of the rejoin contract: a recovered member's
        // packet-by-packet outcomes are bit-identical to its own
        // fault-free run except the skipped culprit, which is booked as a
        // Faulted drop.
        let spec = StreamSpec::simple(2, frame(4), 24, Expectation::Any);
        let mut clean = DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("subject", router(&Backend::sdnet_fixed()));
        let clean_report = clean.run_window(&spec);
        assert!(clean_report.equivalent());
        let mut faulty_dev = router(&Backend::sdnet_fixed());
        faulty_dev.arm_fault(FaultSpec::PanicAfterN { n: 9 });
        let mut faulty = DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("subject", faulty_dev);
        faulty.set_recovery(Some(RecoveryPolicy {
            checkpoint_interval: 4,
            ..RecoveryPolicy::default()
        }));
        let report = faulty.run_window(&spec);
        assert!(report.faults.is_empty(), "{:#?}", report.faults);
        assert!(report.divergences.is_empty(), "{:#?}", report.divergences);
        assert_eq!(report.recoveries.len(), 1);
        let rec = &report.recoveries[0];
        assert_eq!(rec.member, "subject");
        assert_eq!(rec.culprit.as_ref().unwrap().seq, 9);
        assert!(
            rec.frames_replayed <= 4,
            "bounded replay: at most one checkpoint interval, got {}",
            rec.frames_replayed
        );
        // Workers must not change the story.
        let mut wide_dev = router(&Backend::sdnet_fixed());
        wide_dev.arm_fault(FaultSpec::PanicAfterN { n: 9 });
        let mut wide = DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("subject", wide_dev);
        wide.set_recovery(Some(RecoveryPolicy {
            checkpoint_interval: 4,
            ..RecoveryPolicy::default()
        }));
        wide.set_runtime_workers(4);
        assert_eq!(
            wide.recovery().map(|p| p.checkpoint_interval),
            Some(4),
            "recovery survives a worker retarget"
        );
        assert_eq!(wide.run_window(&spec), report);
    }

    #[test]
    fn probe_diffing_quarantines_a_crashing_member() {
        use netdebug_hw::FaultSpec;
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        assert!(probes.len() > 1);
        let mut faulty = router(&Backend::reference());
        faulty.arm_fault(FaultSpec::PanicAfterN { n: 1 });
        let mut fleet = DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("crashes-on-probe-1", faulty);
        let report = fleet.diff_probes(&probes);
        assert_eq!(report.faulted_members(), vec!["crashes-on-probe-1"]);
        let f = &report.faults[0];
        let culprit = f.culprit.as_ref().expect("the probe is the culprit");
        assert_eq!(culprit.seq, 1);
        assert_eq!(culprit.bytes, probes[1].data);
        assert!(report.divergences.is_empty(), "no healthy member diverges");
        assert_eq!(fleet.len(), 2, "the crashed device returns to the fleet");
    }

    /// Two-member fleet for the bisection tests: a reference and a
    /// priority-inverting build, both deployed with **empty** tables so
    /// the behaviour is a pure function of the churn prefix.
    fn bisect_fleet() -> DifferentialFleet {
        use netdebug_hw::{ArchLimits, SdnetProfile};
        let inverted = Backend::SdnetSim(SdnetProfile {
            name: "prio-inverted".into(),
            bugs: vec![netdebug_hw::BugSpec::PriorityInverted],
            limits: ArchLimits::UNLIMITED,
            faults: vec![],
        });
        DifferentialFleet::new()
            .with(
                "reference",
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
            )
            .with(
                "prio-inverted",
                Device::deploy_source(&inverted, corpus::IPV4_FORWARD).unwrap(),
            )
    }

    /// A churn schedule over windows `0..epochs`: window 0 installs the
    /// broad /8 (port 1), window `bad` adds the overlapping /16 (port 2)
    /// that a priority-inverting member shadows, every other window
    /// installs a route the traffic never matches.
    fn bisect_schedule(epochs: u64, bad: u64) -> crate::churn::ChurnSchedule {
        let mut schedule = crate::churn::ChurnSchedule::new();
        for w in 0..epochs {
            let op = if w == 0 {
                crate::churn::ChurnOp::Lpm {
                    table: "ipv4_lpm".into(),
                    prefix: 0x0A00_0000,
                    prefix_len: 8,
                    action: "ipv4_forward".into(),
                    args: vec![0xAA, 1],
                }
            } else if w == bad {
                crate::churn::ChurnOp::Lpm {
                    table: "ipv4_lpm".into(),
                    prefix: 0x0A00_0000,
                    prefix_len: 16,
                    action: "ipv4_forward".into(),
                    args: vec![0xBB, 2],
                }
            } else {
                // 20.<w>.0.0/16: never matches the 10.0.0.9 traffic.
                crate::churn::ChurnOp::Lpm {
                    table: "ipv4_lpm".into(),
                    prefix: 0x1400_0000 | (w as u128) << 16,
                    prefix_len: 16,
                    action: "ipv4_forward".into(),
                    args: vec![0xCC, 3],
                }
            };
            schedule = schedule.before_window(w, op);
        }
        schedule
    }

    #[test]
    fn bisect_churn_finds_the_first_failing_epoch() {
        let mut fleet = bisect_fleet();
        // 8 epochs over 32 packets (window = 4); epoch 5 introduces the
        // shadowed /16. Linear scanning would take 9 runs.
        let spec = StreamSpec::simple(7, frame(4), 32, Expectation::Any);
        let bisection = fleet
            .bisect_churn(&spec, &bisect_schedule(8, 5), 4)
            .unwrap();
        assert_eq!(bisection.first_epoch, Some(5));
        assert!(!bisection.fails_without_churn);
        assert_eq!(bisection.epochs_total, 8);
        assert!(
            bisection.probes <= 5,
            "2 + log2(8) = 5 probes max, took {}",
            bisection.probes
        );
        assert_eq!(bisection.report.diverging_members(), vec!["prio-inverted"]);
        // The fleet hands back its pre-bisection devices: tables are
        // empty again, so a plain window agrees (both members drop).
        let after = fleet.run_window(&spec);
        assert!(after.equivalent(), "{:#?}", after.divergences);
        assert_eq!(after.agreements, 32);
    }

    #[test]
    fn bisect_churn_clean_schedule_costs_one_probe() {
        let mut fleet = bisect_fleet();
        let spec = StreamSpec::simple(7, frame(4), 32, Expectation::Any);
        // No overlapping /16 anywhere (bad epoch out of range): the full
        // schedule passes and the bisection stops after the first probe.
        let bisection = fleet
            .bisect_churn(&spec, &bisect_schedule(8, 99), 4)
            .unwrap();
        assert_eq!(bisection.first_epoch, None);
        assert!(!bisection.fails_without_churn);
        assert_eq!(bisection.probes, 1);
        assert!(bisection.report.equivalent());
    }

    #[test]
    fn bisect_churn_blames_traffic_when_no_epoch_is_at_fault() {
        // A fleet that diverges on the bare traffic (the 2018 reject bug):
        // no churn epoch is to blame and the bisection says so in exactly
        // two probes.
        let mut fleet = DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("sdnet-2018", router(&Backend::sdnet_2018()));
        let spec = StreamSpec::simple(7, frame(5), 32, Expectation::Any);
        let bisection = fleet
            .bisect_churn(&spec, &bisect_schedule(8, 99), 4)
            .unwrap();
        assert_eq!(bisection.first_epoch, None);
        assert!(bisection.fails_without_churn);
        assert_eq!(bisection.probes, 2);
        assert!(!bisection.report.equivalent());
    }

    #[test]
    fn bisect_churn_rejects_an_empty_fleet() {
        let mut fleet = DifferentialFleet::new();
        let spec = StreamSpec::simple(7, frame(4), 8, Expectation::Any);
        let err = fleet
            .bisect_churn(&spec, &crate::churn::ChurnSchedule::new(), 4)
            .unwrap_err();
        assert_eq!(err, FleetError::EmptyFleet);
        assert!(err.to_string().contains("no members"));
    }

    #[test]
    fn configure_all_reaches_every_member() {
        let mut fleet = DifferentialFleet::new()
            .with(
                "a",
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
            )
            .with(
                "b",
                Device::deploy_source(&Backend::sdnet_fixed(), corpus::IPV4_FORWARD).unwrap(),
            );
        fleet
            .configure_all(|d| {
                d.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            })
            .unwrap();
        let report = fleet.run_window(&StreamSpec::simple(
            1,
            frame(4),
            8,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(report.equivalent());
    }
}
