//! Multi-device differential fleets.
//!
//! The N-backend generalisation of [`crate::differential`]: one generated
//! window of test packets is fed — **concurrently, one OS thread per
//! device** — to every deployment in the fleet, and the observed verdicts
//! are diffed against the fleet's reference member (the first one added).
//! This is the scenario the paper's comparison use-case gestures at and
//! Parasol-style parameter sweeps need: the same stimulus against a
//! reference build, a vendor toolchain, a patched toolchain and any number
//! of fault-injected variants, in one run.
//!
//! Each device is an independent simulated board, so fleet execution is
//! embarrassingly parallel; results are joined and diffed in member order,
//! making reports deterministic regardless of thread scheduling. Each
//! member's tables carry their own compiled lookup indexes (published
//! per epoch, see `netdebug_dataplane::LookupIndex`), so churned fleet
//! runs ([`DifferentialFleet::run_churn`]) recompile per member and per
//! publication — divergence between members is always a semantic
//! difference, never a shared-index artefact.

use crate::differential::{outcome_divergence, stages_reached};
use crate::generator::{Generator, StreamSpec};
use crate::probes::Probe;
use netdebug_hw::{Device, Outcome};
use serde::{Deserialize, Serialize};

/// One divergence between a fleet member and the reference device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDivergence {
    /// Index of the packet (or probe) that exposed it.
    pub index: usize,
    /// Label of the diverging member.
    pub member: String,
    /// What differed, reference vs member.
    pub detail: String,
    /// Internal stages the reference traversed (full stage set on the
    /// probe path, the last stage reached on the window path).
    pub stages_reference: Vec<String>,
    /// Internal stages the diverging member traversed.
    pub stages_member: Vec<String>,
}

/// Result of running one stimulus across a whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Label of the reference member all others were diffed against.
    pub reference: String,
    /// All member labels, in fleet order.
    pub members: Vec<String>,
    /// Packets (or probes) in the stimulus.
    pub packets: usize,
    /// Packets on which **every** member agreed with the reference.
    pub agreements: usize,
    /// All divergences, ordered by packet index then member order.
    pub divergences: Vec<FleetDivergence>,
}

impl FleetReport {
    /// True when every member behaved identically to the reference.
    pub fn equivalent(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Labels of members that diverged at least once.
    pub fn diverging_members(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for d in &self.divergences {
            if !out.contains(&d.member.as_str()) {
                out.push(&d.member);
            }
        }
        out
    }
}

struct FleetMember {
    label: String,
    device: Device,
}

/// One member's per-packet observations: the outcome plus the stage set
/// used to localise divergences.
type MemberObservations = Vec<(Outcome, Vec<String>)>;

/// A set of deployed devices that receive identical stimuli.
///
/// The first member added is the **reference** (conventionally the
/// [`netdebug_hw::Backend::reference`] build); every other member is
/// diffed against it.
#[derive(Default)]
pub struct DifferentialFleet {
    members: Vec<FleetMember>,
}

impl DifferentialFleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a deployed device under a report label. The first member added
    /// becomes the reference.
    pub fn add(&mut self, label: impl Into<String>, device: Device) -> &mut Self {
        self.members.push(FleetMember {
            label: label.into(),
            device,
        });
        self
    }

    /// Builder-style [`DifferentialFleet::add`].
    pub fn with(mut self, label: impl Into<String>, device: Device) -> Self {
        self.add(label, device);
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member labels in fleet order.
    pub fn labels(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.label.as_str()).collect()
    }

    /// Mutable access to a member's device (control-plane configuration —
    /// e.g. installing the same routes on every member).
    pub fn device_mut(&mut self, label: &str) -> Option<&mut Device> {
        self.members
            .iter_mut()
            .find(|m| m.label == label)
            .map(|m| &mut m.device)
    }

    /// Install the same table entries on every member via a closure.
    pub fn configure_all(
        &mut self,
        mut f: impl FnMut(&mut Device) -> Result<(), netdebug_dataplane::ControlError>,
    ) -> Result<(), netdebug_dataplane::ControlError> {
        for m in &mut self.members {
            f(&mut m.device)?;
        }
        Ok(())
    }

    /// Generate **one** window from `spec` and feed the identical frames
    /// to every device concurrently (one scoped thread per member, each
    /// running the batched internal path). Outcomes are joined in member
    /// order and every member's packet-by-packet behaviour is diffed
    /// against the reference; the member's last-stage taps localise any
    /// divergence.
    pub fn run_window(&mut self, spec: &StreamSpec) -> FleetReport {
        self.run_churn(spec, &crate::churn::ChurnSchedule::new(), spec.count.max(1))
            .expect("an empty churn schedule cannot fail")
    }

    /// Run a churned stream across the fleet: the stimulus is cut into
    /// `window`-packet windows and, before window `w`, every member
    /// applies the identical [`crate::churn::ChurnSchedule`] ops keyed to
    /// `w` through its epoch-snapshot control plane — so rule churn lands
    /// at the same stream offset on every member and their verdicts stay
    /// comparable packet by packet. Members still run concurrently (one
    /// scoped thread each, batched injection, sharded when configured).
    /// A schedule keying an op to a window the stream never runs is
    /// rejected up front
    /// ([`crate::churn::ChurnError::UnreachableWindow`]); the first
    /// rejected control-plane op on any member aborts the run.
    pub fn run_churn(
        &mut self,
        spec: &StreamSpec,
        schedule: &crate::churn::ChurnSchedule,
        window: u64,
    ) -> Result<FleetReport, crate::churn::ChurnError> {
        let window = window.max(1);
        schedule.validate(spec.count.div_ceil(window))?;
        let gap = self
            .members
            .first()
            .map(|m| Generator::gap_cycles(spec, m.device.config().core_clock_hz))
            .unwrap_or(0);
        // One generator builds every window: all members see identical
        // frames at identical stream offsets.
        let mut generator = Generator::new();
        let mut windows = Vec::new();
        let mut seq = 0u64;
        while seq < spec.count {
            let n = window.min(spec.count - seq);
            windows.push(generator.build_batch(spec, seq, n, 0, gap));
            seq += n;
        }

        let per_member: Vec<Result<MemberObservations, netdebug_dataplane::ControlError>> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = self
                    .members
                    .iter_mut()
                    .map(|m| {
                        let windows = &windows;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for (w, win) in windows.iter().enumerate() {
                                schedule.apply_for_window(w as u64, &mut m.device)?;
                                let frames: Vec<&[u8]> =
                                    win.iter().map(|p| p.data.as_slice()).collect();
                                out.extend(
                                    m.device
                                        .inject_batch(spec.as_port, &frames, gap)
                                        .into_iter()
                                        .map(|p| (p.outcome, vec![p.last_stage])),
                                );
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("fleet worker panicked"))
                    .collect()
            });
        let per_member = per_member.into_iter().collect::<Result<Vec<_>, _>>()?;
        let packets = per_member.first().map(|r| r.len()).unwrap_or(0);
        Ok(self.diff(per_member, packets))
    }

    /// Run a probe set through every device concurrently and diff, with
    /// full per-probe stage sets (the probe path injects one packet at a
    /// time so each probe's tap delta is attributable).
    pub fn diff_probes(&mut self, probes: &[Probe]) -> FleetReport {
        let per_member: Vec<Vec<(Outcome, Vec<String>)>> = std::thread::scope(|scope| {
            let workers: Vec<_> = self
                .members
                .iter_mut()
                .map(|m| {
                    scope.spawn(move || {
                        probes
                            .iter()
                            .map(|p| stages_reached(&mut m.device, 0, &p.data))
                            .collect()
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("fleet worker panicked"))
                .collect()
        });
        self.diff(per_member, probes.len())
    }

    /// Diff joined per-member observations against the reference, in
    /// member order (deterministic by construction).
    fn diff(&self, per_member: Vec<Vec<(Outcome, Vec<String>)>>, packets: usize) -> FleetReport {
        let members: Vec<String> = self.members.iter().map(|m| m.label.clone()).collect();
        let reference = members.first().cloned().unwrap_or_default();
        let mut divergences = Vec::new();
        let mut agreements = 0usize;
        if let Some((ref_results, rest)) = per_member.split_first() {
            for i in 0..packets {
                let (ref_out, ref_stages) = &ref_results[i];
                let mut clean = true;
                for (m, results) in rest.iter().enumerate() {
                    let (out, stages) = &results[i];
                    if let Some(detail) = outcome_divergence(ref_out, out, ref_stages, stages) {
                        clean = false;
                        divergences.push(FleetDivergence {
                            index: i,
                            member: members[m + 1].clone(),
                            detail,
                            stages_reference: ref_stages.clone(),
                            stages_member: stages.clone(),
                        });
                    }
                }
                if clean {
                    agreements += 1;
                }
            }
        }
        FleetReport {
            reference,
            members,
            packets,
            agreements,
            divergences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Expectation;
    use crate::probes::parser_path_probes;
    use netdebug_hw::Backend;
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn router(backend: &Backend) -> Device {
        let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dev
    }

    fn frame(version: u8) -> Vec<u8> {
        let mut f = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
        .udp(1, 2)
        .build();
        f[14] = (version << 4) | 5;
        f
    }

    fn three_member_fleet() -> DifferentialFleet {
        DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("sdnet-fixed", router(&Backend::sdnet_fixed()))
            .with("sdnet-2018", router(&Backend::sdnet_2018()))
    }

    #[test]
    fn fleet_catches_the_reject_bug_and_exonerates_the_fix() {
        let mut fleet = three_member_fleet();
        assert_eq!(fleet.len(), 3);
        // Malformed version-5 packets: the reference and the fixed SDNet
        // drop them, the 2018 SDNet silently forwards them.
        let report = fleet.run_window(&StreamSpec::simple(1, frame(5), 12, Expectation::Any));
        assert_eq!(report.packets, 12);
        assert_eq!(report.reference, "reference");
        assert!(!report.equivalent());
        assert_eq!(report.agreements, 0, "every packet exposes the bug");
        assert_eq!(report.diverging_members(), vec!["sdnet-2018"]);
        for d in &report.divergences {
            assert_eq!(d.member, "sdnet-2018");
            assert!(d.detail.contains("forwards"), "{}", d.detail);
        }
    }

    #[test]
    fn fleet_agrees_on_well_formed_traffic() {
        let mut fleet = three_member_fleet();
        let report = fleet.run_window(&StreamSpec::simple(
            2,
            frame(4),
            20,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(report.equivalent(), "{:#?}", report.divergences);
        assert_eq!(report.agreements, 20);
    }

    #[test]
    fn fleet_probe_diffing_localises_reject_paths() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        let mut fleet = three_member_fleet();
        let report = fleet.diff_probes(&probes);
        assert!(!report.equivalent());
        for d in &report.divergences {
            assert!(
                probes[d.index].hits_reject,
                "only reject-path probes diverge: {d:?}"
            );
            assert_eq!(d.member, "sdnet-2018");
        }
    }

    #[test]
    fn sharded_members_report_identically() {
        // Fleet reports are deterministic even when members themselves
        // shard their batches across threads.
        let mut plain = three_member_fleet();
        let mut sharded = three_member_fleet();
        for label in ["reference", "sdnet-fixed", "sdnet-2018"] {
            sharded.device_mut(label).unwrap().set_shards(4);
        }
        let spec = StreamSpec::simple(3, frame(5), 32, Expectation::Any);
        let a = plain.run_window(&spec);
        let b = sharded.run_window(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_member_fleets_are_trivially_equivalent() {
        let mut empty = DifferentialFleet::new();
        assert!(empty.is_empty());
        let spec = StreamSpec::simple(1, frame(4), 4, Expectation::Any);
        assert!(empty.run_window(&spec).equivalent());
        let mut solo = DifferentialFleet::new().with("only", router(&Backend::reference()));
        let report = solo.run_window(&spec);
        assert!(report.equivalent());
        assert_eq!(report.agreements, 4);
    }

    #[test]
    fn configure_all_reaches_every_member() {
        let mut fleet = DifferentialFleet::new()
            .with(
                "a",
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
            )
            .with(
                "b",
                Device::deploy_source(&Backend::sdnet_fixed(), corpus::IPV4_FORWARD).unwrap(),
            );
        fleet
            .configure_all(|d| {
                d.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            })
            .unwrap();
        let report = fleet.run_window(&StreamSpec::simple(
            1,
            frame(4),
            8,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(report.equivalent());
    }
}
