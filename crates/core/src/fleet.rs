//! Multi-device differential fleets.
//!
//! The N-backend generalisation of [`crate::differential`]: one generated
//! window of test packets is fed — **concurrently, on the fleet's
//! persistent [`FleetRuntime`] worker set** — to every deployment in the
//! fleet, and the observed verdicts are diffed against the fleet's
//! reference member (the first one added). This is the scenario the
//! paper's comparison use-case gestures at and Parasol-style parameter
//! sweeps need: the same stimulus against a reference build, a vendor
//! toolchain, a patched toolchain and any number of fault-injected
//! variants, in one run.
//!
//! Each device is an independent simulated board, so fleet execution is
//! embarrassingly parallel; the runtime drives each member as a
//! virtual-time flow (churn ops become seq-keyed triggers, paced frames
//! coalesce per due instant) and results are joined and diffed in member
//! order, making reports deterministic regardless of worker count. Each
//! member's tables carry their own compiled lookup indexes (published
//! per epoch, see `netdebug_dataplane::LookupIndex`), so churned fleet
//! runs ([`DifferentialFleet::run_churn`]) recompile per member and per
//! publication — divergence between members is always a semantic
//! difference, never a shared-index artefact.

use crate::differential::{outcome_divergence, stages_reached};
use crate::generator::{Generator, StreamSpec};
use crate::probes::Probe;
use crate::runtime::{DeviceSink, DeviceTask, FleetRuntime, FlowRun, RuntimeStats};
use netdebug_hw::{Device, Outcome, Processed};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One divergence between a fleet member and the reference device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDivergence {
    /// Index of the packet (or probe) that exposed it.
    pub index: usize,
    /// Label of the diverging member.
    pub member: String,
    /// What differed, reference vs member.
    pub detail: String,
    /// Internal stages the reference traversed (full stage set on the
    /// probe path, the last stage reached on the window path).
    pub stages_reference: Vec<String>,
    /// Internal stages the diverging member traversed.
    pub stages_member: Vec<String>,
}

/// Result of running one stimulus across a whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Label of the reference member all others were diffed against.
    pub reference: String,
    /// All member labels, in fleet order.
    pub members: Vec<String>,
    /// Packets (or probes) in the stimulus.
    pub packets: usize,
    /// Packets on which **every** member agreed with the reference.
    pub agreements: usize,
    /// All divergences, ordered by packet index then member order.
    pub divergences: Vec<FleetDivergence>,
}

impl FleetReport {
    /// True when every member behaved identically to the reference.
    pub fn equivalent(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Labels of members that diverged at least once.
    pub fn diverging_members(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for d in &self.divergences {
            if !out.contains(&d.member.as_str()) {
                out.push(&d.member);
            }
        }
        out
    }
}

struct FleetMember {
    label: String,
    device: Device,
}

/// One member's per-packet observations: the outcome plus the stage set
/// used to localise divergences.
type MemberObservations = Vec<(Outcome, Vec<String>)>;

/// [`DeviceSink`] that records the window-path observation per packet:
/// the outcome and the last stage the member's pipeline reached.
struct FleetSink {
    obs: MemberObservations,
}

impl DeviceSink for FleetSink {
    fn on_packet(&mut self, _flow: u32, _seq: u64, p: Processed) {
        self.obs.push((p.outcome, vec![p.last_stage]));
    }
}

/// A set of deployed devices that receive identical stimuli.
///
/// The first member added is the **reference** (conventionally the
/// [`netdebug_hw::Backend::reference`] build); every other member is
/// diffed against it. Members execute on a persistent [`FleetRuntime`]
/// worker set that survives across windows and runs.
#[derive(Default)]
pub struct DifferentialFleet {
    members: Vec<FleetMember>,
    runtime: FleetRuntime,
    last_stats: RuntimeStats,
}

impl DifferentialFleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a deployed device under a report label. The first member added
    /// becomes the reference.
    pub fn add(&mut self, label: impl Into<String>, device: Device) -> &mut Self {
        self.members.push(FleetMember {
            label: label.into(),
            device,
        });
        self
    }

    /// Builder-style [`DifferentialFleet::add`].
    pub fn with(mut self, label: impl Into<String>, device: Device) -> Self {
        self.add(label, device);
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member labels in fleet order.
    pub fn labels(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.label.as_str()).collect()
    }

    /// Mutable access to a member's device (control-plane configuration —
    /// e.g. installing the same routes on every member).
    pub fn device_mut(&mut self, label: &str) -> Option<&mut Device> {
        self.members
            .iter_mut()
            .find(|m| m.label == label)
            .map(|m| &mut m.device)
    }

    /// Install the same table entries on every member via a closure.
    pub fn configure_all(
        &mut self,
        mut f: impl FnMut(&mut Device) -> Result<(), netdebug_dataplane::ControlError>,
    ) -> Result<(), netdebug_dataplane::ControlError> {
        for m in &mut self.members {
            f(&mut m.device)?;
        }
        Ok(())
    }

    /// Number of OS threads the fleet's runtime targets.
    pub fn runtime_workers(&self) -> usize {
        self.runtime.target_workers()
    }

    /// Retarget the fleet's persistent runtime at `workers` OS threads
    /// (clamped to at least 1). The existing worker set is joined and the
    /// next run spawns at most `workers` fresh threads; outputs are
    /// bit-identical at any setting.
    pub fn set_runtime_workers(&mut self, workers: usize) {
        if workers.max(1) != self.runtime.target_workers() {
            self.runtime = FleetRuntime::new(workers);
        }
    }

    /// Pool threads the runtime has actually spawned so far (they are
    /// created lazily and reused across windows, like
    /// `Device::pool_workers` for shards).
    pub fn runtime_pool_workers(&self) -> usize {
        self.runtime.pool_workers()
    }

    /// Observability counters from the most recent fleet run, summed over
    /// members: scheduled instants, coalesced-batch sizes, ready-queue
    /// depth and wheel cascades.
    pub fn runtime_stats(&self) -> RuntimeStats {
        self.last_stats
    }

    /// Generate **one** window from `spec` and feed the identical frames
    /// to every device concurrently (each member is a task on the fleet's
    /// persistent runtime, running the batched internal path). Outcomes
    /// are joined in member order and every member's packet-by-packet
    /// behaviour is diffed against the reference; the member's last-stage
    /// taps localise any divergence.
    pub fn run_window(&mut self, spec: &StreamSpec) -> FleetReport {
        self.run_churn(spec, &crate::churn::ChurnSchedule::new(), spec.count.max(1))
            .expect("an empty churn schedule cannot fail")
    }

    /// Run a churned stream across the fleet: the stimulus is cut into
    /// `window`-packet windows and, before window `w`, every member
    /// applies the identical [`crate::churn::ChurnSchedule`] ops keyed to
    /// `w` through its epoch-snapshot control plane — so rule churn lands
    /// at the same stream offset on every member and their verdicts stay
    /// comparable packet by packet. Members run concurrently on the
    /// fleet's persistent [`FleetRuntime`]: each member becomes one
    /// virtual-time flow whose churn ops are seq-keyed triggers, so churn
    /// epochs land at the same scheduled virtual instant on every device
    /// regardless of worker count. A schedule keying an op to a window
    /// the stream never runs is rejected up front
    /// ([`crate::churn::ChurnError::UnreachableWindow`]); the first
    /// rejected control-plane op (in member order) aborts the run.
    pub fn run_churn(
        &mut self,
        spec: &StreamSpec,
        schedule: &crate::churn::ChurnSchedule,
        window: u64,
    ) -> Result<FleetReport, crate::churn::ChurnError> {
        let window = window.max(1);
        schedule.validate(spec.count.div_ceil(window))?;
        let gap = self
            .members
            .first()
            .map(|m| Generator::gap_cycles(spec, m.device.config().core_clock_hz))
            .unwrap_or(0);
        // One generator builds every window: all members see identical
        // frames at identical stream offsets. Windows are stamped from
        // cycle 0, exactly as the per-window loop always built them.
        let mut generator = Generator::new();
        let mut frames = Vec::with_capacity(spec.count as usize);
        let mut seq = 0u64;
        while seq < spec.count {
            let n = window.min(spec.count - seq);
            frames.extend(generator.build_batch(spec, seq, n, 0, gap));
            seq += n;
        }
        let frames = Arc::new(frames);
        // Window-keyed churn ops become seq-keyed triggers on every
        // member's flow (stable sort keeps schedule order per window).
        let mut triggers: Vec<(u64, crate::churn::ChurnOp)> = schedule
            .ops
            .iter()
            .map(|(w, op)| (w * window, op.clone()))
            .collect();
        triggers.sort_by_key(|(s, _)| *s);

        let members = std::mem::take(&mut self.members);
        let mut labels = Vec::with_capacity(members.len());
        let tasks: Vec<DeviceTask<FleetSink>> = members
            .into_iter()
            .map(|m| {
                labels.push(m.label);
                let flow = FlowRun {
                    id: u32::from(spec.stream),
                    as_port: spec.as_port,
                    frames: Arc::clone(&frames),
                    origin: m.device.now(),
                    gap,
                    triggers: triggers.clone(),
                };
                DeviceTask {
                    device: m.device,
                    flows: vec![flow],
                    sink: FleetSink {
                        obs: Vec::with_capacity(spec.count as usize),
                    },
                }
            })
            .collect();
        let done = self.runtime.run(tasks);

        // Devices come back in task order — restore them (and the labels)
        // before deciding pass/fail, so a churn error never loses a member.
        let mut per_member = Vec::with_capacity(done.len());
        let mut stats = RuntimeStats::default();
        let mut first_err: Option<netdebug_dataplane::ControlError> = None;
        for (label, d) in labels.into_iter().zip(done) {
            stats.absorb(&d.stats);
            self.members.push(FleetMember {
                label,
                device: d.device,
            });
            match d.result {
                Ok(()) => per_member.push(d.sink.obs),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        self.last_stats = stats;
        if let Some(e) = first_err {
            return Err(e.into());
        }
        let packets = per_member.first().map(|r| r.len()).unwrap_or(0);
        Ok(self.diff(per_member, packets))
    }

    /// Run a probe set through every device concurrently and diff, with
    /// full per-probe stage sets (the probe path injects one packet at a
    /// time so each probe's tap delta is attributable). Probe jobs run on
    /// the same persistent runtime workers as the window path.
    pub fn diff_probes(&mut self, probes: &[Probe]) -> FleetReport {
        let probes_shared: Arc<Vec<Probe>> = Arc::new(probes.to_vec());
        let members = std::mem::take(&mut self.members);
        let mut labels = Vec::with_capacity(members.len());
        let jobs: Vec<_> = members
            .into_iter()
            .map(|m| {
                labels.push(m.label);
                let probes = Arc::clone(&probes_shared);
                let mut device = m.device;
                move || {
                    let obs: MemberObservations = probes
                        .iter()
                        .map(|p| stages_reached(&mut device, 0, &p.data))
                        .collect();
                    (device, obs)
                }
            })
            .collect();
        let results = self.runtime.execute(jobs);
        let mut per_member = Vec::with_capacity(results.len());
        for (label, (device, obs)) in labels.into_iter().zip(results) {
            self.members.push(FleetMember { label, device });
            per_member.push(obs);
        }
        self.diff(per_member, probes.len())
    }

    /// Diff joined per-member observations against the reference, in
    /// member order (deterministic by construction).
    fn diff(&self, per_member: Vec<Vec<(Outcome, Vec<String>)>>, packets: usize) -> FleetReport {
        let members: Vec<String> = self.members.iter().map(|m| m.label.clone()).collect();
        let reference = members.first().cloned().unwrap_or_default();
        let mut divergences = Vec::new();
        let mut agreements = 0usize;
        if let Some((ref_results, rest)) = per_member.split_first() {
            for i in 0..packets {
                let (ref_out, ref_stages) = &ref_results[i];
                let mut clean = true;
                for (m, results) in rest.iter().enumerate() {
                    let (out, stages) = &results[i];
                    if let Some(detail) = outcome_divergence(ref_out, out, ref_stages, stages) {
                        clean = false;
                        divergences.push(FleetDivergence {
                            index: i,
                            member: members[m + 1].clone(),
                            detail,
                            stages_reference: ref_stages.clone(),
                            stages_member: stages.clone(),
                        });
                    }
                }
                if clean {
                    agreements += 1;
                }
            }
        }
        FleetReport {
            reference,
            members,
            packets,
            agreements,
            divergences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Expectation;
    use crate::probes::parser_path_probes;
    use netdebug_hw::Backend;
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn router(backend: &Backend) -> Device {
        let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dev
    }

    fn frame(version: u8) -> Vec<u8> {
        let mut f = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
        .udp(1, 2)
        .build();
        f[14] = (version << 4) | 5;
        f
    }

    fn three_member_fleet() -> DifferentialFleet {
        DifferentialFleet::new()
            .with("reference", router(&Backend::reference()))
            .with("sdnet-fixed", router(&Backend::sdnet_fixed()))
            .with("sdnet-2018", router(&Backend::sdnet_2018()))
    }

    #[test]
    fn fleet_catches_the_reject_bug_and_exonerates_the_fix() {
        let mut fleet = three_member_fleet();
        assert_eq!(fleet.len(), 3);
        // Malformed version-5 packets: the reference and the fixed SDNet
        // drop them, the 2018 SDNet silently forwards them.
        let report = fleet.run_window(&StreamSpec::simple(1, frame(5), 12, Expectation::Any));
        assert_eq!(report.packets, 12);
        assert_eq!(report.reference, "reference");
        assert!(!report.equivalent());
        assert_eq!(report.agreements, 0, "every packet exposes the bug");
        assert_eq!(report.diverging_members(), vec!["sdnet-2018"]);
        for d in &report.divergences {
            assert_eq!(d.member, "sdnet-2018");
            assert!(d.detail.contains("forwards"), "{}", d.detail);
        }
    }

    #[test]
    fn fleet_agrees_on_well_formed_traffic() {
        let mut fleet = three_member_fleet();
        let report = fleet.run_window(&StreamSpec::simple(
            2,
            frame(4),
            20,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(report.equivalent(), "{:#?}", report.divergences);
        assert_eq!(report.agreements, 20);
    }

    #[test]
    fn fleet_probe_diffing_localises_reject_paths() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        let mut fleet = three_member_fleet();
        let report = fleet.diff_probes(&probes);
        assert!(!report.equivalent());
        for d in &report.divergences {
            assert!(
                probes[d.index].hits_reject,
                "only reject-path probes diverge: {d:?}"
            );
            assert_eq!(d.member, "sdnet-2018");
        }
    }

    #[test]
    fn sharded_members_report_identically() {
        // Fleet reports are deterministic even when members themselves
        // shard their batches across threads.
        let mut plain = three_member_fleet();
        let mut sharded = three_member_fleet();
        for label in ["reference", "sdnet-fixed", "sdnet-2018"] {
            sharded.device_mut(label).unwrap().set_shards(4);
        }
        let spec = StreamSpec::simple(3, frame(5), 32, Expectation::Any);
        let a = plain.run_window(&spec);
        let b = sharded.run_window(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_workers_are_reused_across_windows() {
        // Like `pool_workers` for shards: the fleet's worker set spawns
        // lazily on first use and is reused by every subsequent window —
        // no per-window thread churn.
        let mut fleet = three_member_fleet();
        fleet.set_runtime_workers(3);
        assert_eq!(fleet.runtime_workers(), 3);
        assert_eq!(fleet.runtime_pool_workers(), 0, "workers spawn lazily");
        let spec = StreamSpec::simple(1, frame(5), 8, Expectation::Any);
        fleet.run_window(&spec);
        let spawned = fleet.runtime_pool_workers();
        assert_eq!(spawned, 3, "three members wake all three workers");
        for _ in 0..4 {
            fleet.run_window(&spec);
        }
        assert_eq!(
            fleet.runtime_pool_workers(),
            spawned,
            "repeat windows reuse the same threads"
        );
        let stats = fleet.runtime_stats();
        assert_eq!(stats.packets, 3 * 8, "last run drove 8 packets per member");
        assert!(stats.dispatches >= 3, "at least one dispatch per member");
    }

    #[test]
    fn worker_counts_do_not_change_fleet_reports() {
        // The determinism contract: identical fleets, worker counts 1..=4,
        // byte-identical reports (verdicts, stages, divergence order).
        let spec = StreamSpec::simple(3, frame(5), 24, Expectation::Any);
        let schedule = crate::churn::ChurnSchedule::new().before_window(
            1,
            crate::churn::ChurnOp::Clear {
                table: "ipv4_lpm".into(),
            },
        );
        let mut reference: Option<FleetReport> = None;
        for workers in 1..=4 {
            let mut fleet = three_member_fleet();
            fleet.set_runtime_workers(workers);
            let report = fleet.run_churn(&spec, &schedule, 8).unwrap();
            match &reference {
                None => reference = Some(report),
                Some(r) => assert_eq!(r, &report, "workers={workers} diverged"),
            }
        }
    }

    #[test]
    fn empty_and_single_member_fleets_are_trivially_equivalent() {
        let mut empty = DifferentialFleet::new();
        assert!(empty.is_empty());
        let spec = StreamSpec::simple(1, frame(4), 4, Expectation::Any);
        assert!(empty.run_window(&spec).equivalent());
        let mut solo = DifferentialFleet::new().with("only", router(&Backend::reference()));
        let report = solo.run_window(&spec);
        assert!(report.equivalent());
        assert_eq!(report.agreements, 4);
    }

    #[test]
    fn configure_all_reaches_every_member() {
        let mut fleet = DifferentialFleet::new()
            .with(
                "a",
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
            )
            .with(
                "b",
                Device::deploy_source(&Backend::sdnet_fixed(), corpus::IPV4_FORWARD).unwrap(),
            );
        fleet
            .configure_all(|d| {
                d.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            })
            .unwrap();
        let report = fleet.run_window(&StreamSpec::simple(
            1,
            frame(4),
            8,
            Expectation::Forward { port: Some(1) },
        ));
        assert!(report.equivalent());
    }
}
