//! Fault localisation from stage tap counters.
//!
//! "If a bug prevents packets from being correctly forwarded to the output
//! interfaces of the device, users can find where the fault occurred, even
//! inside the data plane." — §2. The mechanism: every pipeline stage keeps
//! a packet counter readable over the register bus. Injecting a probe
//! packet and diffing the counters shows exactly how deep the packet got;
//! the first stage whose counter did *not* increment is where it vanished.

use netdebug_hw::Device;
use serde::{Deserialize, Serialize};

/// Where a probe packet went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Localization {
    /// Stages whose counters incremented, in pipeline order.
    pub stages_reached: Vec<String>,
    /// The last stage reached; `egress` means the packet left the device.
    pub deepest: String,
    /// The next stage after `deepest` (where the packet should have gone),
    /// if any — the prime suspect for a drop.
    pub vanished_before: Option<String>,
    /// True if the packet made it out.
    pub forwarded: bool,
}

impl core::fmt::Display for Localization {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.forwarded {
            write!(
                f,
                "packet traversed the pipeline: {}",
                self.stages_reached.join(" -> ")
            )
        } else {
            write!(
                f,
                "packet vanished after `{}`{}",
                self.deepest,
                match &self.vanished_before {
                    Some(next) => format!(" (never reached `{next}`)"),
                    None => String::new(),
                }
            )
        }
    }
}

/// Inject a probe packet and localise how far it got, using only the
/// register bus (exactly what the host tool can do against real hardware).
pub fn localize(device: &mut Device, as_port: u16, packet: &[u8]) -> Localization {
    let stage_names: Vec<String> = device.stage_names().to_vec();
    let before: Vec<u64> = device.stage_counts().to_vec();
    let processed = device.inject(as_port, packet);
    let after: Vec<u64> = device.stage_counts().to_vec();

    let mut stages_reached = Vec::new();
    for (i, name) in stage_names.iter().enumerate() {
        if after[i] > before[i] {
            stages_reached.push(name.clone());
        }
    }
    let deepest = stages_reached
        .last()
        .cloned()
        .unwrap_or_else(|| "ingress".to_string());
    let forwarded = processed.outcome.transmitted();
    let vanished_before = if forwarded {
        None
    } else {
        // Next stage in pipeline order after the deepest reached.
        stage_names
            .iter()
            .position(|n| *n == deepest)
            .and_then(|i| stage_names.get(i + 1))
            .cloned()
    };

    Localization {
        stages_reached,
        deepest,
        vanished_before,
        forwarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_hw::Backend;
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn router() -> Device {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let mut dev = Device::deploy(&Backend::reference(), &ir).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dev
    }

    fn frame(version: u8, dst: Ipv4Address) -> Vec<u8> {
        let mut f = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), dst)
        .udp(1, 2)
        .build();
        f[14] = (version << 4) | 5;
        f
    }

    #[test]
    fn forwarded_packet_reaches_egress() {
        let mut dev = router();
        let loc = localize(&mut dev, 0, &frame(4, Ipv4Address::new(10, 0, 0, 9)));
        assert!(loc.forwarded);
        assert_eq!(loc.deepest, "egress");
        assert!(loc.stages_reached.contains(&"table:ipv4_lpm".to_string()));
        assert!(loc.to_string().contains("traversed"));
    }

    #[test]
    fn parser_drop_localised_to_state() {
        let mut dev = router();
        let loc = localize(&mut dev, 0, &frame(5, Ipv4Address::new(10, 0, 0, 9)));
        assert!(!loc.forwarded);
        assert_eq!(loc.deepest, "parser:parse_ipv4");
        assert_eq!(loc.vanished_before.as_deref(), Some("table:ipv4_lpm"));
        assert!(loc
            .to_string()
            .contains("vanished after `parser:parse_ipv4`"));
    }

    #[test]
    fn table_drop_localised_to_table() {
        let mut dev = router();
        // Unroutable destination: reaches the table, dies there.
        let loc = localize(&mut dev, 0, &frame(4, Ipv4Address::new(192, 168, 0, 1)));
        assert!(!loc.forwarded);
        assert_eq!(loc.deepest, "table:ipv4_lpm");
        assert_eq!(loc.vanished_before.as_deref(), Some("deparser"));
    }

    #[test]
    fn localization_matches_on_buggy_backend() {
        // On SDNet-sim the malformed packet sails straight through —
        // localisation shows it reaching egress, which combined with the
        // expectation tells the user the *parser* accepted what it must
        // reject.
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let mut dev = Device::deploy(&Backend::sdnet_2018(), &ir).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        let loc = localize(&mut dev, 0, &frame(5, Ipv4Address::new(10, 0, 0, 9)));
        assert!(loc.forwarded, "{loc}");
        assert_eq!(loc.deepest, "egress");
    }
}
