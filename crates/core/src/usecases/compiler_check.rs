//! Compiler check use-case (§3, third bullet): "finding limitations in the
//! compiler".
//!
//! Two failure classes exist and NetDebug distinguishes them:
//!
//! * **Diagnosed limitations** — the backend refuses the program with an
//!   error (no meters, key too wide, …). Any toolchain user sees these.
//! * **Silent mis-compilations** — the compile succeeds but the deployed
//!   pipeline diverges from the spec. These are found by *differential
//!   testing*: compile the same program for the reference and the target,
//!   steer probe packets down every parser path, and diff behaviour and
//!   stage coverage. The SDNet reject bug is exactly such a finding.

use crate::differential::diff_devices;
use crate::probes::parser_path_probes;
use netdebug_hw::{Backend, Device};
use netdebug_p4::corpus::CorpusProgram;
use serde::{Deserialize, Serialize};

/// Conformance verdict for one (program, backend) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Conformance {
    /// Compiles and behaves identically to the reference on all probes.
    Pass,
    /// The backend refused the program, with diagnostics.
    Diagnosed(Vec<String>),
    /// Compiles, but behaviour diverges from the reference — a silent
    /// compiler bug, with the first divergence as evidence.
    SilentDivergence {
        /// Number of diverging probes.
        diverging_probes: usize,
        /// Description of the first divergence.
        first: String,
    },
    /// The program itself failed to compile on the *reference* (spec-level
    /// error; not a backend issue).
    Invalid(String),
}

impl Conformance {
    /// Short cell text for matrix rendering.
    pub fn cell(&self) -> String {
        match self {
            Conformance::Pass => "pass".to_string(),
            Conformance::Diagnosed(es) => format!("diagnosed({})", es.len()),
            Conformance::SilentDivergence {
                diverging_probes, ..
            } => format!("SILENT-BUG({diverging_probes})"),
            Conformance::Invalid(_) => "invalid".to_string(),
        }
    }
}

/// One row of the conformance matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceRow {
    /// Program name.
    pub program: String,
    /// Backend name.
    pub backend: String,
    /// Verdict.
    pub conformance: Conformance,
}

/// The full compiler-check report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerCheckReport {
    /// One row per (program, backend).
    pub rows: Vec<ConformanceRow>,
}

impl CompilerCheckReport {
    /// All rows with silent divergences.
    pub fn silent_bugs(&self) -> Vec<&ConformanceRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.conformance, Conformance::SilentDivergence { .. }))
            .collect()
    }
}

impl core::fmt::Display for CompilerCheckReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "{:<24} {:<14} verdict", "program", "backend")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<24} {:<14} {}",
                row.program,
                row.backend,
                row.conformance.cell()
            )?;
        }
        Ok(())
    }
}

/// Check one program against one backend.
pub fn check_program(source: &str, name: &str, backend: &Backend) -> ConformanceRow {
    let row = |conformance| ConformanceRow {
        program: name.to_string(),
        backend: backend.name().to_string(),
        conformance,
    };
    let ir = match netdebug_p4::compile(source) {
        Ok(ir) => ir,
        Err(e) => return row(Conformance::Invalid(e.to_string())),
    };
    let compiled = match backend.compile(&ir) {
        Ok(c) => c,
        Err(diags) => return row(Conformance::Diagnosed(diags)),
    };
    drop(compiled);

    // Differential testing against the reference deployment.
    let mut reference = match Device::deploy(&Backend::reference(), &ir) {
        Ok(d) => d,
        Err(e) => return row(Conformance::Invalid(e.to_string())),
    };
    let mut target = Device::deploy(backend, &ir).expect("compile already succeeded");
    let probes = parser_path_probes(&ir);
    let diff = diff_devices(&mut reference, &mut target, &probes);
    if diff.equivalent() {
        row(Conformance::Pass)
    } else {
        row(Conformance::SilentDivergence {
            diverging_probes: diff.divergences.len(),
            first: format!(
                "{} (probe path: {})",
                diff.divergences[0].detail, diff.divergences[0].probe_path
            ),
        })
    }
}

/// Check a corpus of programs against several backends.
pub fn check_corpus(programs: &[CorpusProgram], backends: &[Backend]) -> CompilerCheckReport {
    let mut rows = Vec::new();
    for program in programs {
        for backend in backends {
            rows.push(check_program(program.source, program.name, backend));
        }
    }
    CompilerCheckReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_p4::corpus;

    #[test]
    fn reference_passes_everything() {
        let report = check_corpus(&corpus::corpus(), &[Backend::reference()]);
        for row in &report.rows {
            assert_eq!(row.conformance, Conformance::Pass, "{}", row.program);
        }
    }

    #[test]
    fn sdnet_2018_matrix_matches_the_paper() {
        let report = check_corpus(&corpus::corpus(), &[Backend::sdnet_2018()]);
        let get = |name: &str| {
            &report
                .rows
                .iter()
                .find(|r| r.program == name)
                .unwrap()
                .conformance
        };
        // Silent mis-compilation of reject — the paper's finding.
        assert!(
            matches!(get("feature_reject"), Conformance::SilentDivergence { .. }),
            "{:?}",
            get("feature_reject")
        );
        assert!(matches!(
            get("ipv4_forward"),
            Conformance::SilentDivergence { .. }
        ));
        // Diagnosed limitations.
        assert!(matches!(get("rate_limiter"), Conformance::Diagnosed(_)));
        assert!(matches!(get("feature_wide_key"), Conformance::Diagnosed(_)));
        assert!(matches!(
            get("feature_range_select"),
            Conformance::Diagnosed(_)
        ));
        // Programs with no reject path and no unsupported features pass.
        assert_eq!(*get("l2_switch"), Conformance::Pass);
        assert_eq!(*get("reflector"), Conformance::Pass);

        assert!(!report.silent_bugs().is_empty());
        let text = report.to_string();
        assert!(text.contains("SILENT-BUG"));
    }

    #[test]
    fn fixed_sdnet_clears_the_silent_bugs() {
        let report = check_corpus(&corpus::corpus(), &[Backend::sdnet_fixed()]);
        assert!(
            report.silent_bugs().is_empty(),
            "{:#?}",
            report.silent_bugs()
        );
        // Architecture limits remain diagnosed.
        assert!(report
            .rows
            .iter()
            .any(|r| matches!(r.conformance, Conformance::Diagnosed(_))));
    }

    #[test]
    fn first_divergence_names_the_reject_path() {
        let row = check_program(
            corpus::FEATURE_REJECT,
            "feature_reject",
            &Backend::sdnet_2018(),
        );
        match row.conformance {
            Conformance::SilentDivergence { first, .. } => {
                assert!(first.contains("reject"), "{first}");
            }
            other => panic!("{other:?}"),
        }
    }
}
