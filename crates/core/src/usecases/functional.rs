//! Functional testing use-case (§3, first bullet).
//!
//! Directed test vectors: each names a packet, an impersonated ingress
//! port, and the expected data-plane behaviour. Failures are localised via
//! the stage taps automatically — this is the workflow the paper's §4 case
//! study describes.

use crate::checker::Violation;
use crate::generator::{Expectation, StreamSpec};
use crate::localize::{localize, Localization};
use crate::session::NetDebug;
use serde::{Deserialize, Serialize};

/// One directed functional test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestVector {
    /// Name shown in reports.
    pub name: String,
    /// Ingress port to impersonate.
    pub as_port: u16,
    /// Packet bytes.
    pub packet: Vec<u8>,
    /// Expected behaviour.
    pub expect: Expectation,
}

/// Result of one vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorResult {
    /// Vector name.
    pub name: String,
    /// True if behaviour matched the expectation.
    pub passed: bool,
    /// What went wrong, when it did.
    pub detail: Option<String>,
    /// Localisation of the failure (from a follow-up probe).
    pub localization: Option<Localization>,
}

/// Aggregated functional report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionalReport {
    /// Per-vector results.
    pub results: Vec<VectorResult>,
}

impl FunctionalReport {
    /// Number of passing vectors.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed).count()
    }

    /// Number of failing vectors.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// True when everything passed.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }
}

impl core::fmt::Display for FunctionalReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "functional: {}/{} vectors passed",
            self.passed(),
            self.results.len()
        )?;
        for r in &self.results {
            if !r.passed {
                writeln!(
                    f,
                    "  FAIL {}: {}{}",
                    r.name,
                    r.detail.as_deref().unwrap_or("mismatch"),
                    match &r.localization {
                        Some(l) => format!(" [{l}]"),
                        None => String::new(),
                    }
                )?;
            }
        }
        Ok(())
    }
}

/// Run a batch of vectors through NetDebug.
pub fn run(nd: &mut NetDebug, vectors: &[TestVector]) -> FunctionalReport {
    let mut results = Vec::with_capacity(vectors.len());
    for (i, vector) in vectors.iter().enumerate() {
        let stream = 0x4000 + i as u16;
        let violations_before = nd.checker().violations().len();
        nd.run_stream(&StreamSpec {
            stream,
            template: vector.packet.clone(),
            count: 1,
            rate_pps: None,
            as_port: vector.as_port,
            sweeps: Vec::new(),
            expect: vector.expect,
        });
        let new_violations: Vec<Violation> =
            nd.checker().violations()[violations_before..].to_vec();
        let stats = nd.checker().stream(stream).cloned().unwrap_or_default();
        let lost_unexpectedly =
            matches!(vector.expect, Expectation::Forward { .. }) && stats.received == 0;
        let passed = new_violations.is_empty() && !lost_unexpectedly;
        let (detail, localization) = if passed {
            (None, None)
        } else {
            let detail = if let Some(v) = new_violations.first() {
                format!("{v:?}")
            } else {
                "packet lost".to_string()
            };
            // Follow-up probe through the stage taps pinpoints the fault.
            let loc = localize(nd.device_mut(), vector.as_port, &vector.packet);
            (Some(detail), Some(loc))
        };
        results.push(VectorResult {
            name: vector.name.clone(),
            passed,
            detail,
            localization,
        });
    }
    FunctionalReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_hw::{Backend, Device};
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn vectors() -> Vec<TestVector> {
        let mk = |version: u8, dst: Ipv4Address| {
            let mut f = PacketBuilder::ethernet(
                EthernetAddress::new(2, 0, 0, 0, 0, 1),
                EthernetAddress::new(2, 0, 0, 0, 0, 2),
            )
            .ipv4(Ipv4Address::new(10, 0, 0, 1), dst)
            .udp(1, 2)
            .build();
            f[14] = (version << 4) | 5;
            f
        };
        vec![
            TestVector {
                name: "routed packet forwards".into(),
                as_port: 0,
                packet: mk(4, Ipv4Address::new(10, 0, 0, 5)),
                expect: Expectation::Forward { port: Some(1) },
            },
            TestVector {
                name: "unroutable packet drops".into(),
                as_port: 0,
                packet: mk(4, Ipv4Address::new(192, 168, 0, 1)),
                expect: Expectation::Drop,
            },
            TestVector {
                name: "malformed version drops (reject)".into(),
                as_port: 0,
                packet: mk(5, Ipv4Address::new(10, 0, 0, 5)),
                expect: Expectation::Drop,
            },
        ]
    }

    fn device(backend: &Backend) -> Device {
        let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
        dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
            .unwrap();
        dev
    }

    #[test]
    fn reference_passes_all_vectors() {
        let mut nd = NetDebug::new(device(&Backend::reference()));
        let report = run(&mut nd, &vectors());
        assert!(report.all_passed(), "{report}");
        assert_eq!(report.passed(), 3);
    }

    #[test]
    fn sdnet_fails_reject_vector_with_localisation() {
        let mut nd = NetDebug::new(device(&Backend::sdnet_2018()));
        let report = run(&mut nd, &vectors());
        assert_eq!(report.failed(), 1, "{report}");
        let failure = report.results.iter().find(|r| !r.passed).unwrap();
        assert!(failure.name.contains("malformed"));
        assert!(failure
            .detail
            .as_deref()
            .unwrap()
            .contains("ForwardedButExpectedDrop"));
        // Localisation shows the packet sailing to egress — combined with
        // the expectation this indicts the parser's reject handling.
        let loc = failure.localization.as_ref().unwrap();
        assert!(loc.forwarded);
        assert_eq!(loc.deepest, "egress");
        let text = report.to_string();
        assert!(text.contains("FAIL"));
    }
}
