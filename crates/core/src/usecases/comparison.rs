//! Comparison use-case (§3, seventh bullet): "comparing alternative
//! specifications of the same program".
//!
//! NetDebug "can perform full comparisons, since it is able to run tests
//! related to all the discussed use-cases". This module compares two
//! deployments — same program on two backends, or two programs claimed to
//! be equivalent — across every observable axis: behaviour on probe
//! packets (with internal stage diffs), latency, and resource cost.

use crate::differential::{diff_devices, DiffReport};
use crate::probes::parser_path_probes;
use netdebug_hw::{Backend, DeployError, Device};
use serde::{Deserialize, Serialize};

/// The full comparison verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Label of side A.
    pub a: String,
    /// Label of side B.
    pub b: String,
    /// Behavioural diff over parser-path probes.
    pub behaviour: DiffReport,
    /// Mean pipeline latency per probe (cycles): A then B.
    pub latency_cycles: (f64, f64),
    /// Resource totals (LUTs, BRAM36): A then B.
    pub resources: ((u64, u64), (u64, u64)),
}

impl ComparisonReport {
    /// True when behaviour is identical on every probe.
    pub fn behaviourally_equivalent(&self) -> bool {
        self.behaviour.equivalent()
    }
}

impl core::fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "comparison: {} vs {}", self.a, self.b)?;
        writeln!(
            f,
            "  behaviour: {} agreements, {} divergences{}",
            self.behaviour.agreements,
            self.behaviour.divergences.len(),
            if self.behaviour.equivalent() {
                " (equivalent)"
            } else {
                ""
            }
        )?;
        for d in self.behaviour.divergences.iter().take(5) {
            writeln!(
                f,
                "    probe[{}] {}: {}",
                d.probe_index, d.probe_path, d.detail
            )?;
        }
        writeln!(
            f,
            "  latency (mean cycles): {:.1} vs {:.1}",
            self.latency_cycles.0, self.latency_cycles.1
        )?;
        writeln!(
            f,
            "  resources (LUT/BRAM): {}/{} vs {}/{}",
            self.resources.0 .0, self.resources.0 .1, self.resources.1 .0, self.resources.1 .1
        )
    }
}

fn mean_probe_latency(dev: &mut Device, probes: &[crate::probes::Probe]) -> f64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for p in probes {
        let processed = dev.inject(0, &p.data);
        sum += processed.pipeline_cycles;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

/// Compare one program deployed on two backends.
pub fn compare_backends(
    source: &str,
    a: &Backend,
    b: &Backend,
) -> Result<ComparisonReport, DeployError> {
    let ir = netdebug_p4::compile(source).map_err(|e| DeployError {
        messages: vec![e.to_string()],
    })?;
    let probes = parser_path_probes(&ir);
    let mut dev_a = Device::deploy(a, &ir)?;
    let mut dev_b = Device::deploy(b, &ir)?;
    let behaviour = diff_devices(&mut dev_a, &mut dev_b, &probes);
    let lat_a = mean_probe_latency(&mut dev_a, &probes);
    let lat_b = mean_probe_latency(&mut dev_b, &probes);
    let res_a = &dev_a.compiled().resources;
    let res_b = &dev_b.compiled().resources;
    Ok(ComparisonReport {
        a: format!("{}@{}", ir.name, a.name()),
        b: format!("{}@{}", ir.name, b.name()),
        behaviour,
        latency_cycles: (lat_a, lat_b),
        resources: (
            (res_a.total_luts(), res_a.total_bram36()),
            (res_b.total_luts(), res_b.total_bram36()),
        ),
    })
}

/// Compare two programs (claimed equivalent) on the same backend. Probes
/// are drawn from *both* parsers so either side's paths are exercised.
pub fn compare_programs(
    source_a: &str,
    source_b: &str,
    backend: &Backend,
) -> Result<ComparisonReport, DeployError> {
    let to_err = |e: netdebug_p4::Diag| DeployError {
        messages: vec![e.to_string()],
    };
    let ir_a = netdebug_p4::compile(source_a).map_err(to_err)?;
    let ir_b = netdebug_p4::compile(source_b).map_err(to_err)?;
    let mut probes = parser_path_probes(&ir_a);
    probes.extend(parser_path_probes(&ir_b));
    let mut dev_a = Device::deploy(backend, &ir_a)?;
    let mut dev_b = Device::deploy(backend, &ir_b)?;
    let behaviour = diff_devices(&mut dev_a, &mut dev_b, &probes);
    let lat_a = mean_probe_latency(&mut dev_a, &probes);
    let lat_b = mean_probe_latency(&mut dev_b, &probes);
    let res_a = &dev_a.compiled().resources;
    let res_b = &dev_b.compiled().resources;
    Ok(ComparisonReport {
        a: format!("{}@{}", ir_a.name, backend.name()),
        b: format!("{}@{}", ir_b.name, backend.name()),
        behaviour,
        latency_cycles: (lat_a, lat_b),
        resources: (
            (res_a.total_luts(), res_a.total_bram36()),
            (res_b.total_luts(), res_b.total_bram36()),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_p4::corpus;

    #[test]
    fn reference_vs_sdnet_2018_differs_behaviourally() {
        let report = compare_backends(
            corpus::IPV4_FORWARD,
            &Backend::reference(),
            &Backend::sdnet_2018(),
        )
        .unwrap();
        assert!(!report.behaviourally_equivalent());
        let text = report.to_string();
        assert!(text.contains("divergences"));
    }

    #[test]
    fn reference_vs_fixed_sdnet_equivalent_but_latency_comparable() {
        let report = compare_backends(
            corpus::IPV4_FORWARD,
            &Backend::reference(),
            &Backend::sdnet_fixed(),
        )
        .unwrap();
        assert!(report.behaviourally_equivalent());
        assert!((report.latency_cycles.0 - report.latency_cycles.1).abs() < 1e-9);
        assert_eq!(report.resources.0, report.resources.1);
    }

    #[test]
    fn equivalent_reformulation_passes_inequivalent_fails() {
        // Same reflector semantics written with a temporary local instead
        // of metadata.
        let alt_reflector = r#"
            header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
            struct headers_t { ethernet_t ethernet; }
            struct metadata_t { bit<1> u; }
            parser P2(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                      inout standard_metadata_t standard_metadata) {
                state start { pkt.extract(hdr.ethernet); transition accept; }
            }
            control I2(inout headers_t hdr, inout metadata_t meta,
                       inout standard_metadata_t standard_metadata) {
                apply {
                    bit<48> tmp = hdr.ethernet.dstAddr;
                    hdr.ethernet.dstAddr = hdr.ethernet.srcAddr;
                    hdr.ethernet.srcAddr = tmp;
                    standard_metadata.egress_spec = standard_metadata.ingress_port;
                }
            }
            control D2(packet_out pkt, in headers_t hdr) {
                apply { pkt.emit(hdr.ethernet); }
            }
            V1Switch(P2(), I2(), D2()) main;
        "#;
        let report =
            compare_programs(corpus::REFLECTOR, alt_reflector, &Backend::reference()).unwrap();
        assert!(
            report.behaviourally_equivalent(),
            "{:#?}",
            report.behaviour.divergences
        );

        // A subtly different program (does not swap MACs) is caught.
        let broken = alt_reflector.replace(
            "hdr.ethernet.dstAddr = hdr.ethernet.srcAddr;",
            "hdr.ethernet.dstAddr = tmp;",
        );
        let report = compare_programs(corpus::REFLECTOR, &broken, &Backend::reference()).unwrap();
        assert!(!report.behaviourally_equivalent());
        assert!(report.behaviour.divergences[0]
            .detail
            .contains("bytes differ"));
    }
}
