//! Resources quantification use-case (§3, fifth bullet): "evaluating the
//! consumption of hardware resources".
//!
//! For each program this reports the estimated LUT/FF/BRAM cost of the
//! compiled pipeline and its utilisation of the NetFPGA SUME budget. Only a
//! tool with access to the toolchain/board — NetDebug's position — can see
//! these numbers; they are invisible at the device's ports (which is why
//! Figure 2 scores external testers "no" here).

use netdebug_hw::{Backend, ResourceReport, SUME_BUDGET};
use serde::{Deserialize, Serialize};

/// One program's resource row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRow {
    /// Program name.
    pub program: String,
    /// Estimated LUTs.
    pub luts: u64,
    /// Estimated flip-flops.
    pub ffs: u64,
    /// Estimated BRAM36 blocks.
    pub bram36: u64,
    /// LUT utilisation fraction of the SUME.
    pub lut_fraction: f64,
    /// BRAM utilisation fraction of the SUME.
    pub bram_fraction: f64,
    /// Whether the design fits the board.
    pub fits: bool,
    /// Per-component breakdown.
    pub breakdown: ResourceReport,
}

/// The resources report across a corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourcesReport {
    /// One row per program.
    pub rows: Vec<ResourceRow>,
}

impl core::fmt::Display for ResourcesReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{:<24} {:>10} {:>10} {:>8} {:>7} {:>7} fits",
            "program", "LUTs", "FFs", "BRAM36", "LUT%", "BRAM%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:>10} {:>10} {:>8} {:>6.2}% {:>6.2}% {}",
                r.program,
                r.luts,
                r.ffs,
                r.bram36,
                r.lut_fraction * 100.0,
                r.bram_fraction * 100.0,
                if r.fits { "yes" } else { "NO" }
            )?;
        }
        Ok(())
    }
}

/// Quantify the resources of one program (compiled with the reference
/// backend so even SDNet-rejected programs get an estimate).
pub fn quantify_program(name: &str, source: &str) -> Option<ResourceRow> {
    let ir = netdebug_p4::compile(source).ok()?;
    let compiled = Backend::reference().compile(&ir).ok()?;
    let report = compiled.resources;
    let (lut_fraction, _, bram_fraction) = report.utilisation(SUME_BUDGET);
    Some(ResourceRow {
        program: name.to_string(),
        luts: report.total_luts(),
        ffs: report.total_ffs(),
        bram36: report.total_bram36(),
        lut_fraction,
        bram_fraction,
        fits: report.fits(SUME_BUDGET),
        breakdown: report,
    })
}

/// Quantify a corpus of (name, source) pairs.
pub fn quantify<'a>(programs: impl IntoIterator<Item = (&'a str, &'a str)>) -> ResourcesReport {
    ResourcesReport {
        rows: programs
            .into_iter()
            .filter_map(|(n, s)| quantify_program(n, s))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_p4::corpus;

    #[test]
    fn corpus_quantified() {
        let report = quantify(
            corpus::corpus()
                .iter()
                .map(|p| (p.name, p.source))
                .collect::<Vec<_>>(),
        );
        assert_eq!(report.rows.len(), corpus::corpus().len());
        for row in &report.rows {
            assert!(row.fits, "{}", row.program);
            assert!(row.luts > 0);
            assert!(!row.breakdown.components.is_empty());
        }
        // The ternary ACL dominates LUT cost; the reflector is the smallest.
        let luts = |name: &str| report.rows.iter().find(|r| r.program == name).unwrap().luts;
        assert!(luts("acl_firewall") > 10 * luts("reflector"));
        let text = report.to_string();
        assert!(text.contains("acl_firewall"));
    }

    #[test]
    fn invalid_programs_skipped() {
        let report = quantify([("broken", "header {")]);
        assert!(report.rows.is_empty());
    }
}
