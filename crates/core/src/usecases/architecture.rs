//! Architecture check use-case (§3, fourth bullet): "finding limitations in
//! the architecture".
//!
//! Sweeps generated P4 programs along one architectural dimension at a time
//! (parser depth, pipeline stages, key width) until the target refuses
//! them, and probes *runtime* limits the compiler never mentions: a table
//! whose declared size exceeds what the hardware actually holds is found by
//! installing entries until the device says "full" — which is how NetDebug
//! exposes the silent `TableCapacityTruncated` defect.

use netdebug_hw::{Backend, Device};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One probed architectural dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchFinding {
    /// Dimension name.
    pub dimension: String,
    /// Largest value that worked.
    pub supported: u64,
    /// First value that failed (None if everything probed worked).
    pub first_failure: Option<u64>,
    /// Diagnostic the backend gave at the failure, if any. A failure
    /// *without* a diagnostic is a silent limitation.
    pub diagnostic: Option<String>,
}

/// The architecture report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchReport {
    /// Backend probed.
    pub backend: String,
    /// Findings per dimension.
    pub findings: Vec<ArchFinding>,
}

impl core::fmt::Display for ArchReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "architecture limits of `{}`:", self.backend)?;
        for finding in &self.findings {
            writeln!(
                f,
                "  {:<22} supported={:<8} first-failure={}",
                finding.dimension,
                finding.supported,
                match finding.first_failure {
                    Some(v) => v.to_string(),
                    None => "-".to_string(),
                }
            )?;
        }
        Ok(())
    }
}

/// Generate a program with an `n`-state parser chain.
pub fn program_with_parser_depth(n: usize) -> String {
    let mut src = String::from("header seg_t { bit<8> next; bit<8> val; }\n");
    src.push_str("struct headers_t {");
    for i in 0..n {
        let _ = write!(src, " seg_t s{i};");
    }
    src.push_str(" }\nstruct meta_t { bit<1> u; }\n");
    src.push_str(
        "parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t std) {\n",
    );
    for i in 0..n {
        let state = if i == 0 {
            "start".to_string()
        } else {
            format!("p{i}")
        };
        let _ = write!(src, "state {state} {{ pkt.extract(hdr.s{i}); ");
        if i + 1 < n {
            let _ = writeln!(
                src,
                "transition select(hdr.s{i}.next) {{ 1: p{}; default: accept; }} }}",
                i + 1
            );
        } else {
            src.push_str("transition accept; }\n");
        }
    }
    src.push_str("}\n");
    src.push_str(
        "control I(inout headers_t hdr, inout meta_t m, inout standard_metadata_t std) { apply { std.egress_spec = 1; } }\n",
    );
    src.push_str("control D(packet_out pkt, in headers_t hdr) { apply {");
    for i in 0..n {
        let _ = write!(src, " pkt.emit(hdr.s{i});");
    }
    src.push_str(" } }\n");
    src
}

/// Generate a program applying `n` tables in sequence.
pub fn program_with_stages(n: usize) -> String {
    let mut src = String::from(
        "header byte_t { bit<8> v; }\nstruct headers_t { byte_t b; }\nstruct meta_t { bit<8> acc; }\n",
    );
    src.push_str(
        "parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t std) { state start { pkt.extract(hdr.b); transition accept; } }\n",
    );
    src.push_str(
        "control I(inout headers_t hdr, inout meta_t m, inout standard_metadata_t std) {\n",
    );
    src.push_str("action bump() { m.acc = m.acc + 1; }\n");
    for i in 0..n {
        let _ = writeln!(
            src,
            "table t{i} {{ key = {{ hdr.b.v: exact; }} actions = {{ bump; }} default_action = bump(); }}"
        );
    }
    src.push_str("apply {");
    for i in 0..n {
        let _ = write!(src, " t{i}.apply();");
    }
    src.push_str(" std.egress_spec = 1; } }\n");
    src.push_str("control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.b); } }\n");
    src
}

/// Generate a program with one `w`-bit ternary key.
pub fn program_with_key_width(w: u16) -> String {
    format!(
        r#"
        header wide_t {{ bit<{w}> big; }}
        struct headers_t {{ wide_t w; }}
        struct meta_t {{ bit<1> u; }}
        parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t std) {{
            state start {{ pkt.extract(hdr.w); transition accept; }}
        }}
        control I(inout headers_t hdr, inout meta_t m, inout standard_metadata_t std) {{
            action drop() {{ mark_to_drop(); }}
            action fwd(bit<9> p) {{ std.egress_spec = p; }}
            table t {{ key = {{ hdr.w.big: ternary; }} actions = {{ fwd; drop; }} size = 16; default_action = drop(); }}
            apply {{ t.apply(); }}
        }}
        control D(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.w); }} }}
        "#
    )
}

fn sweep_dimension(
    backend: &Backend,
    name: &str,
    values: &[u64],
    source_for: impl Fn(u64) -> String,
) -> ArchFinding {
    let mut supported = 0u64;
    for &v in values {
        let src = source_for(v);
        let ir = netdebug_p4::compile(&src).expect("generated programs are valid");
        match backend.compile(&ir) {
            Ok(_) => supported = v,
            Err(diags) => {
                return ArchFinding {
                    dimension: name.to_string(),
                    supported,
                    first_failure: Some(v),
                    diagnostic: diags.first().cloned(),
                }
            }
        }
    }
    ArchFinding {
        dimension: name.to_string(),
        supported,
        first_failure: None,
        diagnostic: None,
    }
}

/// Probe the *effective* capacity of a deployed table by installing entries
/// until the device refuses. Declared vs effective mismatch = silent limit.
pub fn probe_table_capacity(backend: &Backend, declared: u64) -> (u64, u64) {
    let src = format!(
        r#"
        header byte_t {{ bit<8> v; }}
        struct headers_t {{ byte_t b; }}
        struct meta_t {{ bit<1> u; }}
        parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t std) {{
            state start {{ pkt.extract(hdr.b); transition accept; }}
        }}
        control I(inout headers_t hdr, inout meta_t m, inout standard_metadata_t std) {{
            action drop() {{ mark_to_drop(); }}
            action fwd(bit<9> p) {{ std.egress_spec = p; }}
            table cap {{ key = {{ hdr.b.v: exact; }} actions = {{ fwd; drop; }} size = {declared}; default_action = drop(); }}
            apply {{ cap.apply(); }}
        }}
        control D(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.b); }} }}
        "#
    );
    let mut dev = Device::deploy_source(backend, &src).expect("capacity program compiles");
    let mut installed = 0u64;
    for key in 0..declared {
        match dev.install_exact("cap", vec![key as u128], "fwd", vec![1]) {
            Ok(()) => installed += 1,
            Err(_) => break,
        }
    }
    (declared, installed)
}

/// Probe all dimensions of a backend.
pub fn probe_limits(backend: &Backend) -> ArchReport {
    let findings = vec![
        sweep_dimension(backend, "parser-states", &[2, 4, 8, 16, 32, 48, 64], |n| {
            program_with_parser_depth(n as usize)
        }),
        sweep_dimension(backend, "pipeline-stages", &[2, 4, 8, 16, 24, 32], |n| {
            program_with_stages(n as usize)
        }),
        sweep_dimension(backend, "key-width-bits", &[16, 32, 64, 96, 128], |w| {
            program_with_key_width(w as u16)
        }),
    ];
    ArchReport {
        backend: backend.name().to_string(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_hw::BugSpec;

    #[test]
    fn reference_has_no_probed_limits() {
        let report = probe_limits(&Backend::reference());
        for f in &report.findings {
            assert!(f.first_failure.is_none(), "{f:?}");
        }
    }

    #[test]
    fn sdnet_limits_located_with_diagnostics() {
        let report = probe_limits(&Backend::sdnet_2018());
        let get = |name: &str| {
            report
                .findings
                .iter()
                .find(|f| f.dimension == name)
                .unwrap()
        };
        // 32 parser states supported; 48 fails.
        let ps = get("parser-states");
        assert_eq!(ps.supported, 32);
        assert_eq!(ps.first_failure, Some(48));
        assert!(ps.diagnostic.as_deref().unwrap().contains("parser"));
        // 16 stages; 24 fails.
        let st = get("pipeline-stages");
        assert_eq!(st.supported, 16);
        assert_eq!(st.first_failure, Some(24));
        // 64-bit keys; 96 fails.
        let kw = get("key-width-bits");
        assert_eq!(kw.supported, 64);
        assert_eq!(kw.first_failure, Some(96));
        let text = report.to_string();
        assert!(text.contains("parser-states"));
    }

    #[test]
    fn declared_capacity_honoured_on_reference() {
        let (declared, effective) = probe_table_capacity(&Backend::reference(), 128);
        assert_eq!(declared, effective);
    }

    #[test]
    fn capacity_truncation_bug_found_at_runtime() {
        // The compile is silent; only installing entries reveals that the
        // table holds a quarter of what was declared.
        let backend = Backend::sdnet_with_bugs(
            "cap-bug",
            vec![BugSpec::TableCapacityTruncated { factor: 4 }],
        );
        let (declared, effective) = probe_table_capacity(&backend, 128);
        assert_eq!(declared, 128);
        assert_eq!(effective, 32, "silent truncation exposed by probing");
    }

    #[test]
    fn generated_programs_compile() {
        for n in [1usize, 3, 10] {
            assert!(netdebug_p4::compile(&program_with_parser_depth(n)).is_ok());
            assert!(netdebug_p4::compile(&program_with_stages(n)).is_ok());
        }
        for w in [8u16, 64, 128] {
            assert!(netdebug_p4::compile(&program_with_key_width(w)).is_ok());
        }
    }
}
