//! Figure 2: the use-case coverage matrix.
//!
//! The paper's Figure 2 compares NetDebug against software formal
//! verification (p4v) and external network testers (OSNT) across the seven
//! use-cases of §3. This module *measures* that matrix instead of asserting
//! it: every cell is scored by running concrete capability probes —
//! deploying buggy backends, injecting packets, running the verifier —
//! and checking what each tool can and cannot observe. Structural
//! impossibilities (an external tester has no register bus; a verifier has
//! no device) are encoded by the tool APIs themselves: the probe simply has
//! no way to obtain the answer.

use crate::generator::Expectation;
use crate::localize::localize;
use crate::session::NetDebug;
use crate::usecases::{architecture, comparison, compiler_check, performance, resources, status};
use netdebug_hw::{Backend, BugSpec, Device};
use netdebug_p4::corpus;
use netdebug_tester::{check_forwarding, ExternalView};
use netdebug_verify::{verify, FindingKind, Options};
use serde::{Deserialize, Serialize};

/// A cell score, as in the paper's figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Score {
    /// All capability probes pass.
    Full,
    /// Some pass.
    Partial,
    /// None pass.
    None,
}

impl Score {
    fn from_probes(probes: &[bool]) -> Score {
        let passed = probes.iter().filter(|p| **p).count();
        if passed == probes.len() && !probes.is_empty() {
            Score::Full
        } else if passed > 0 {
            Score::Partial
        } else {
            Score::None
        }
    }

    /// The paper's cell glyph.
    pub fn glyph(&self) -> &'static str {
        match self {
            Score::Full => "full",
            Score::Partial => "partial",
            Score::None => "no",
        }
    }
}

/// One row of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Use-case name.
    pub use_case: String,
    /// Capability probe names.
    pub probes: Vec<String>,
    /// Score for software formal verification.
    pub verifier: Score,
    /// Score for the external network tester.
    pub external: Score,
    /// Score for NetDebug.
    pub netdebug: Score,
}

/// The whole matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMatrix {
    /// Rows, one per §3 use-case.
    pub rows: Vec<CoverageRow>,
}

impl core::fmt::Display for CoverageMatrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{:<26} {:<14} {:<14} {:<10}",
            "use-case", "formal-verif", "ext-tester", "netdebug"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<26} {:<14} {:<14} {:<10}",
                row.use_case,
                row.verifier.glyph(),
                row.external.glyph(),
                row.netdebug.glyph()
            )?;
        }
        Ok(())
    }
}

/// A program with a genuine *specification* bug: packets with `x >= 128`
/// fall through with no verdict (the developer meant to forward
/// everything).
const SPEC_BUGGY: &str = r#"
    header h_t { bit<8> x; }
    struct headers_t { h_t h; }
    struct meta_t { bit<8> y; }
    parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
             inout standard_metadata_t std) {
        state start { pkt.extract(hdr.h); transition accept; }
    }
    control I(inout headers_t hdr, inout meta_t m,
              inout standard_metadata_t std) {
        apply {
            if (hdr.h.x < 128) {
                std.egress_spec = 1;
            }
        }
    }
    control D(packet_out pkt, in headers_t hdr) {
        apply { pkt.emit(hdr.h); }
    }
"#;

fn router_on(backend: &Backend) -> Device {
    let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
    dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    dev
}

fn malformed_ipv4() -> Vec<u8> {
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
    let mut f = PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
    .udp(1, 2)
    .build();
    f[14] = 0x55; // version 5: the parser must reject this
    f
}

// ---------------------------------------------------------------------
// Per-use-case probe batteries. Each returns (probe names, [v, e, n]).
// ---------------------------------------------------------------------

fn functional_row() -> CoverageRow {
    // Probe 1: catch a specification bug before deployment.
    let spec_ir = netdebug_p4::compile(SPEC_BUGGY).unwrap();
    let v1 = !verify(&spec_ir, Options::default()).clean_of(FindingKind::NoVerdict);
    // Externally: intended behaviour is unknown to the tester; the spec bug
    // only shows if the user supplies the exact losing vector. Probe: the
    // tester replays the program's own parser-path probes (all x=0) — the
    // bug is not hit.
    let e1 = {
        let mut dev = Device::deploy_source(&Backend::reference(), SPEC_BUGGY).unwrap();
        let mut view = ExternalView::attach(&mut dev);
        let probes = crate::probes::parser_path_probes(&spec_ir);
        probes.iter().any(|p| view.send(0, &p.data).lost())
    };
    // NetDebug: a directed vector with the developer's intent (forward
    // everything) plus a field sweep across x catches the vanishing half.
    let n1 = {
        let dev = Device::deploy_source(&Backend::reference(), SPEC_BUGGY).unwrap();
        let mut nd = NetDebug::new(dev);
        nd.run_stream(&crate::generator::StreamSpec {
            stream: 1,
            template: vec![0u8; 20],
            count: 256,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![crate::generator::FieldSweep { offset: 0, step: 1 }],
            expect: Expectation::Forward { port: None },
        });
        !nd.checker().violations().is_empty()
    };

    // Probe 2: catch the hardware (SDNet reject) bug.
    let v2 = {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        // The verifier sees only the spec — which is clean. It cannot flag
        // the deployed artifact.
        !verify(&ir, Options::default()).verified()
    };
    let e2 = {
        let mut dev = router_on(&Backend::sdnet_2018());
        let mut view = ExternalView::attach(&mut dev);
        check_forwarding(&mut view, 0, &malformed_ipv4(), None).is_err()
    };
    let n2 = {
        let mut nd = NetDebug::new(router_on(&Backend::sdnet_2018()));
        nd.run_stream(&crate::generator::StreamSpec {
            stream: 2,
            template: malformed_ipv4(),
            count: 1,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Drop,
        });
        !nd.checker().violations().is_empty()
    };

    // Probe 3: localise a failure to a pipeline stage.
    let v3 = false; // no device, nothing to localise
    let e3 = false; // structural: ExternalObservation carries no stage info
    let n3 = {
        let mut dev = router_on(&Backend::reference());
        let loc = localize(&mut dev, 0, &malformed_ipv4());
        !loc.forwarded && loc.deepest == "parser:parse_ipv4"
    };

    CoverageRow {
        use_case: "functional testing".into(),
        probes: vec![
            "catch spec bug".into(),
            "catch hardware bug".into(),
            "localise to stage".into(),
        ],
        verifier: Score::from_probes(&[v1, v2, v3]),
        external: Score::from_probes(&[e1, e2, e3]),
        netdebug: Score::from_probes(&[n1, n2, n3]),
    }
}

fn performance_row() -> CoverageRow {
    let template_for = |size: usize| -> Vec<u8> {
        use netdebug_packet::{EthernetAddress, PacketBuilder};
        PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(&vec![0u8; size - 14])
        .build()
    };

    // Probe 1: measure throughput at all.
    let v1 = false; // a verifier has no notion of time
    let e1 = {
        let mut dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
        let mut view = ExternalView::attach(&mut dev);
        let report = netdebug_tester::run_flow(
            &mut view,
            &netdebug_tester::FlowSpec {
                template: template_for(128),
                count: 100,
                ingress: 0,
                vary_byte: None,
            },
        );
        report.throughput_bps > 0.0
    };
    let n1 = {
        let dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
        let mut nd = NetDebug::new(dev);
        let report = performance::sweep(
            &mut nd,
            |s| template_for(s - 28),
            &[100],
            100,
            performance::Pace::LineRate,
        );
        report.points[0].achieved_pps > 0.0
    };

    // Probe 2: isolate pipeline latency from the surrounding hardware.
    // External latency necessarily includes two MAC traversals; the
    // in-device measurement does not. Probe: the injected ExtraLatency of
    // 100 cycles (500 ns) must be measurable *exactly*.
    let slow = Backend::sdnet_with_bugs("slow", vec![BugSpec::ExtraLatency { cycles: 100 }]);
    let (v2, e2, n2) = {
        let v = false;
        // External: latency delta is visible but polluted by MAC jitter and
        // serialisation: the probe demands attributing the delta to the
        // pipeline, which requires the internal timestamps.
        let e = false; // structural: Observation has a single end-to-end number
        let n = {
            let mk = |backend: &Backend| {
                let dev = Device::deploy_source(backend, corpus::REFLECTOR).unwrap();
                let mut nd = NetDebug::new(dev);
                let r = performance::sweep(
                    &mut nd,
                    |s| template_for(s - 28),
                    &[100],
                    50,
                    performance::Pace::Pps(1e6),
                );
                r.points[0].latency_cycles_avg
            };
            let delta = mk(&slow) - mk(&Backend::reference());
            (delta - 100.0).abs() < 2.0
        };
        (v, e, n)
    };

    // Probe 3: measure packet rate (pps).
    let v3 = false;
    let e3 = true; // counting frames per second externally works
    let n3 = true; // shown by probe 1's sweep (achieved_pps)

    CoverageRow {
        use_case: "performance testing".into(),
        probes: vec![
            "measure throughput".into(),
            "isolate pipeline latency".into(),
            "measure packet rate".into(),
        ],
        verifier: Score::from_probes(&[v1, v2, v3]),
        external: Score::from_probes(&[e1, e2, e3]),
        netdebug: Score::from_probes(&[n1, n2, n3]),
    }
}

fn compiler_row() -> CoverageRow {
    // Probe 1: detect the silent reject mis-compilation.
    let v1 = {
        let ir = netdebug_p4::compile(corpus::FEATURE_REJECT).unwrap();
        !verify(&ir, Options::default()).verified() // clean spec: nothing to see
    };
    let e1 = {
        let mut dev =
            Device::deploy_source(&Backend::sdnet_2018(), corpus::FEATURE_REJECT).unwrap();
        let mut view = ExternalView::attach(&mut dev);
        // A tag byte != 0xAA must be rejected per spec.
        let mut probe = vec![0x55u8];
        probe.extend_from_slice(&[0; 8]);
        check_forwarding(&mut view, 0, &probe, None).is_err()
    };
    let n1 = {
        let row = compiler_check::check_program(
            corpus::FEATURE_REJECT,
            "feature_reject",
            &Backend::sdnet_2018(),
        );
        matches!(
            row.conformance,
            compiler_check::Conformance::SilentDivergence { .. }
        )
    };

    // Probe 2: attribute the divergence to the parser feature (reject),
    // not just "something is off".
    let v2 = false;
    let e2 = false; // no internal path view
    let n2 = {
        let row = compiler_check::check_program(
            corpus::FEATURE_REJECT,
            "feature_reject",
            &Backend::sdnet_2018(),
        );
        match row.conformance {
            compiler_check::Conformance::SilentDivergence { first, .. } => first.contains("reject"),
            _ => false,
        }
    };

    // Probe 3: produce the full conformance matrix (diagnosed + silent).
    let v3 = false;
    let e3 = false;
    let n3 = {
        let report = compiler_check::check_corpus(&corpus::corpus(), &[Backend::sdnet_2018()]);
        !report.silent_bugs().is_empty()
            && report
                .rows
                .iter()
                .any(|r| matches!(r.conformance, compiler_check::Conformance::Diagnosed(_)))
    };

    CoverageRow {
        use_case: "compiler check".into(),
        probes: vec![
            "detect silent mis-compilation".into(),
            "attribute to feature".into(),
            "full conformance matrix".into(),
        ],
        verifier: Score::from_probes(&[v1, v2, v3]),
        external: Score::from_probes(&[e1, e2, e3]),
        netdebug: Score::from_probes(&[n1, n2, n3]),
    }
}

fn architecture_row() -> CoverageRow {
    // Probe 1: observe an architecture-induced behavioural change from
    // outside (the silent stage-budget truncation changes the egress port
    // of feature_many_tables).
    let trunc = Backend::sdnet_with_bugs(
        "trunc",
        vec![BugSpec::StageBudgetSilentTruncation { max_stages: 4 }],
    );
    let v1 = false;
    let e1 = {
        // feature_many_tables emits on port == number of applied tables
        // (12 when correct, 4 when truncated) — a 16-port board makes both
        // externally observable.
        let cfg = netdebug_hw::DeviceConfig {
            ports: 16,
            ..Default::default()
        };
        let ir = netdebug_p4::compile(corpus::FEATURE_MANY_TABLES).unwrap();
        let mut good = Device::deploy_with_config(&Backend::reference(), &ir, cfg).unwrap();
        let mut bad = Device::deploy_with_config(&trunc, &ir, cfg).unwrap();
        let probe = vec![7u8, 0, 0, 0];
        let mut vg = ExternalView::attach(&mut good);
        let og = vg.send(0, &probe);
        let mut vb = ExternalView::attach(&mut bad);
        let ob = vb.send(0, &probe);
        og.outputs.first().map(|(p, _)| *p) != ob.outputs.first().map(|(p, _)| *p)
    };
    let n1 = e1; // NetDebug sees at least as much

    // Probe 2: locate the numeric limits per dimension.
    let v2 = false;
    let e2 = false;
    let n2 = {
        let report = architecture::probe_limits(&Backend::sdnet_2018());
        report.findings.iter().all(|f| f.first_failure.is_some())
    };

    // Probe 3: expose silent table-capacity truncation at runtime.
    let v3 = false;
    let e3 = false; // no control-plane access from the wire
    let n3 = {
        let backend =
            Backend::sdnet_with_bugs("cap", vec![BugSpec::TableCapacityTruncated { factor: 4 }]);
        let (declared, effective) = architecture::probe_table_capacity(&backend, 64);
        effective < declared
    };

    CoverageRow {
        use_case: "architecture check".into(),
        probes: vec![
            "observe behavioural limit".into(),
            "locate numeric limits".into(),
            "expose silent capacity cut".into(),
        ],
        verifier: Score::from_probes(&[v1, v2, v3]),
        external: Score::from_probes(&[e1, e2, e3]),
        netdebug: Score::from_probes(&[n1, n2, n3]),
    }
}

fn resources_row() -> CoverageRow {
    // Single probe: produce LUT/BRAM figures for a program. Only the tool
    // with toolchain/board access can; the external tester's Observation
    // type and the verifier's report have no such fields (structural).
    let n = resources::quantify_program("ipv4_forward", corpus::IPV4_FORWARD)
        .map(|r| r.luts > 0)
        .unwrap_or(false);
    CoverageRow {
        use_case: "resources quantification".into(),
        probes: vec!["report LUT/BRAM usage".into()],
        verifier: Score::from_probes(&[false]),
        external: Score::from_probes(&[false]),
        netdebug: Score::from_probes(&[n]),
    }
}

fn status_row() -> CoverageRow {
    // Single probe: produce a mid-traffic timeline of internal counters.
    let n = {
        let dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
        let mut nd = NetDebug::new(dev);
        let traffic = crate::generator::StreamSpec::simple(
            1,
            {
                use netdebug_packet::{EthernetAddress, PacketBuilder};
                PacketBuilder::ethernet(
                    EthernetAddress::new(2, 0, 0, 0, 0, 1),
                    EthernetAddress::new(2, 0, 0, 0, 0, 2),
                )
                .payload(b"mon")
                .build()
            },
            20,
            Expectation::Any,
        );
        let timeline = status::monitor(&mut nd, &traffic, 4);
        timeline.samples.len() == 5 && timeline.stage_deltas().iter().any(|(_, d)| *d > 0)
    };
    CoverageRow {
        use_case: "status monitoring".into(),
        probes: vec!["periodic internal counters".into()],
        verifier: Score::from_probes(&[false]),
        external: Score::from_probes(&[false]),
        netdebug: Score::from_probes(&[n]),
    }
}

fn comparison_row() -> CoverageRow {
    // Probe 1: distinguish two specs that differ at the spec level.
    let v1 = {
        let clean = netdebug_p4::compile(corpus::REFLECTOR).unwrap();
        let buggy = netdebug_p4::compile(SPEC_BUGGY).unwrap();
        let a = verify(&clean, Options::default()).verified();
        let b = verify(&buggy, Options::default()).verified();
        a != b
    };
    let e1 = false; // intent not visible on the wire (see functional probe 1)
    let n1 = true; // NetDebug subsumes the behavioural comparison below

    // Probe 2: distinguish two *implementations* of one spec.
    let v2 = false; // verifier never sees implementations
    let e2 = {
        // Externally visible: same packets, different outcome.
        let mut a = router_on(&Backend::reference());
        let mut b = router_on(&Backend::sdnet_2018());
        let probe = malformed_ipv4();
        let oa = ExternalView::attach(&mut a).send(0, &probe);
        let ob = ExternalView::attach(&mut b).send(0, &probe);
        oa.lost() != ob.lost()
    };
    let n2 = {
        let report = comparison::compare_backends(
            corpus::IPV4_FORWARD,
            &Backend::reference(),
            &Backend::sdnet_2018(),
        )
        .unwrap();
        !report.behaviourally_equivalent()
    };

    // Probe 3: compare across *all* axes (behaviour + latency + resources).
    let v3 = false;
    let e3 = false;
    let n3 = {
        let report = comparison::compare_backends(
            corpus::IPV4_FORWARD,
            &Backend::reference(),
            &Backend::sdnet_fixed(),
        )
        .unwrap();
        report.behaviourally_equivalent() && report.resources.0 .0 > 0
    };

    CoverageRow {
        use_case: "comparison".into(),
        probes: vec![
            "compare specifications".into(),
            "compare implementations".into(),
            "compare all axes".into(),
        ],
        verifier: Score::from_probes(&[v1, v2, v3]),
        external: Score::from_probes(&[e1, e2, e3]),
        netdebug: Score::from_probes(&[n1, n2, n3]),
    }
}

/// Measure the whole Figure 2 matrix.
pub fn figure2() -> CoverageMatrix {
    CoverageMatrix {
        rows: vec![
            functional_row(),
            performance_row(),
            compiler_row(),
            architecture_row(),
            resources_row(),
            status_row(),
            comparison_row(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_matches_the_paper() {
        let m = figure2();
        assert_eq!(m.rows.len(), 7);

        let row = |name: &str| m.rows.iter().find(|r| r.use_case.contains(name)).unwrap();

        // NetDebug: full coverage on every use-case.
        for r in &m.rows {
            assert_eq!(r.netdebug, Score::Full, "netdebug on {}", r.use_case);
        }
        // Formal verification: partial on functional and comparison, none
        // elsewhere.
        assert_eq!(row("functional").verifier, Score::Partial);
        assert_eq!(row("comparison").verifier, Score::Partial);
        for name in [
            "performance",
            "compiler",
            "architecture",
            "resources",
            "status",
        ] {
            assert_eq!(row(name).verifier, Score::None, "verifier on {name}");
        }
        // External tester: partial on functional/performance/compiler/
        // architecture/comparison, none on resources and status.
        for name in [
            "functional",
            "performance",
            "compiler",
            "architecture",
            "comparison",
        ] {
            assert_eq!(row(name).external, Score::Partial, "external on {name}");
        }
        assert_eq!(row("resources").external, Score::None);
        assert_eq!(row("status").external, Score::None);

        let text = m.to_string();
        assert!(text.contains("netdebug"));
        assert!(text.contains("full"));
    }
}
