//! Performance testing use-case (§3, second bullet).
//!
//! "Performance metrics, such as throughput, packet rate and latency."
//! NetDebug measures all three *from inside the device*: the generator
//! stamps injection timestamps in device cycles, the checker reads them at
//! the pipeline output, so latency excludes the MACs and throughput is the
//! pipeline's own — numbers an external tester cannot separate from the
//! surrounding hardware.

use crate::generator::{Expectation, StreamSpec};
use crate::session::NetDebug;
use serde::{Deserialize, Serialize};

/// How injections are paced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pace {
    /// Inject at the 10G line rate for the frame size.
    LineRate,
    /// Inject as fast as the pipeline accepts (capacity probe).
    BackToBack,
    /// Fixed rate in packets per second.
    Pps(f64),
}

/// One row of the performance sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Frame size in bytes.
    pub frame_bytes: usize,
    /// Offered load, packets per second.
    pub offered_pps: f64,
    /// Achieved rate through the pipeline, packets per second.
    pub achieved_pps: f64,
    /// Achieved rate in Gbit/s of frame bytes.
    pub achieved_gbps: f64,
    /// Mean pipeline latency in device cycles.
    pub latency_cycles_avg: f64,
    /// Minimum pipeline latency in device cycles.
    pub latency_cycles_min: u64,
    /// Maximum pipeline latency in device cycles.
    pub latency_cycles_max: u64,
    /// Mean pipeline latency in nanoseconds.
    pub latency_ns_avg: f64,
    /// Fraction of the 10G line rate achieved (1.0 = full line rate).
    pub line_rate_fraction: f64,
    /// Packets lost inside the pipeline during the run.
    pub lost: u64,
}

/// A full sweep report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Pacing used.
    pub pace: Pace,
    /// One point per frame size.
    pub points: Vec<PerfPoint>,
}

impl core::fmt::Display for PerfReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{:>6} {:>12} {:>12} {:>9} {:>16} {:>10}",
            "bytes", "offered-pps", "achieved-pps", "gbps", "latency(cyc avg)", "line-rate"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:>12.0} {:>12.0} {:>9.3} {:>16.1} {:>9.1}%",
                p.frame_bytes,
                p.offered_pps,
                p.achieved_pps,
                p.achieved_gbps,
                p.latency_cycles_avg,
                p.line_rate_fraction * 100.0
            )?;
        }
        Ok(())
    }
}

/// Sweep frame sizes through the device.
///
/// `sizes` are *wire* frame sizes; the generator appends a 28-byte test
/// header, so `template_for(size)` must return `size - 28` template bytes
/// that the program under test forwards (performance runs need packets
/// that survive the pipeline).
pub fn sweep(
    nd: &mut NetDebug,
    template_for: impl Fn(usize) -> Vec<u8>,
    sizes: &[usize],
    count: u64,
    pace: Pace,
) -> PerfReport {
    const TEST_HDR: usize = netdebug_packet::TEST_HEADER_LEN;
    let clock_hz = nd.device().config().core_clock_hz;
    let mut points = Vec::with_capacity(sizes.len());
    for (i, &size) in sizes.iter().enumerate() {
        let stream = 0x5000 + i as u16;
        let template = template_for(size);
        assert_eq!(
            template.len() + TEST_HDR,
            size,
            "template_for must return size - {TEST_HDR} bytes"
        );
        let line_pps = nd.device().config().line_rate_pps(size);
        let rate_pps = match pace {
            Pace::LineRate => Some(line_pps),
            Pace::BackToBack => None,
            Pace::Pps(pps) => Some(pps),
        };
        nd.run_stream(&StreamSpec {
            stream,
            template,
            count,
            rate_pps,
            as_port: 0,
            sweeps: Vec::new(),
            expect: Expectation::Any,
        });
        let stats = nd.checker().stream(stream).cloned().unwrap_or_default();
        let (first, last) = nd.stream_window(stream).unwrap_or((0, 1));
        let window_s = (last.saturating_sub(first)).max(1) as f64 / clock_hz;
        let achieved_pps = stats.received as f64 / window_s;
        let offered_pps = rate_pps.unwrap_or({
            // Back-to-back: offered = pipeline acceptance rate.
            achieved_pps
        });
        let achieved_gbps = achieved_pps * (size * 8) as f64 / 1e9;
        points.push(PerfPoint {
            frame_bytes: size,
            offered_pps,
            achieved_pps,
            achieved_gbps,
            latency_cycles_avg: stats.latency.mean(),
            latency_cycles_min: stats.latency.min(),
            latency_cycles_max: stats.latency.max(),
            latency_ns_avg: stats.latency.mean() * 1e9 / clock_hz,
            line_rate_fraction: achieved_pps / line_pps,
            lost: stats.lost(),
        });
    }
    PerfReport { pace, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_hw::{Backend, BugSpec, Device};
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, PacketBuilder};

    fn reflector(backend: &Backend) -> NetDebug {
        NetDebug::new(Device::deploy_source(backend, corpus::REFLECTOR).unwrap())
    }

    // Template sized such that template + 28B test header == wire size.
    fn template_for(size: usize) -> Vec<u8> {
        let payload = size - 14 - 28;
        PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(&vec![0x5Au8; payload])
        .build()
    }

    #[test]
    fn line_rate_sustained_across_sizes() {
        let mut nd = reflector(&Backend::reference());
        let sizes = [64usize, 128, 256, 512, 1024, 1472];
        let report = sweep(&mut nd, template_for, &sizes, 200, Pace::LineRate);
        for p in &report.points {
            assert_eq!(p.lost, 0, "{p:?}");
            assert!(
                p.line_rate_fraction > 0.95,
                "line rate at {}B: {:.3}",
                p.frame_bytes,
                p.line_rate_fraction
            );
        }
        // Latency flat at line rate (no queue build-up).
        let p64 = &report.points[0];
        assert!(
            p64.latency_cycles_max <= p64.latency_cycles_min + 2,
            "{p64:?}"
        );
        let text = report.to_string();
        assert!(text.contains("line-rate"));
    }

    #[test]
    fn back_to_back_shows_pipeline_capacity() {
        let mut nd = reflector(&Backend::reference());
        let report = sweep(&mut nd, template_for, &[64], 500, Pace::BackToBack);
        let p = &report.points[0];
        // II for the reflector: ethernet (112 bits) -> 1 + 2 = 3 cycles,
        // so the pipeline accepts ~200e6/3 = 66.7 Mpps, far above line rate.
        assert!(
            p.achieved_pps > 60e6,
            "pipeline capacity {} pps",
            p.achieved_pps
        );
        // Back-to-back floods the pipeline: queueing delays show up as a
        // widening min/max latency spread.
        assert!(p.latency_cycles_max > p.latency_cycles_min);
    }

    #[test]
    fn extra_latency_bug_visible_in_measurements() {
        let mut clean = reflector(&Backend::reference());
        let mut slow = reflector(&Backend::sdnet_with_bugs(
            "slow",
            vec![BugSpec::ExtraLatency { cycles: 200 }],
        ));
        let c = sweep(&mut clean, template_for, &[128], 50, Pace::Pps(1e6));
        let s = sweep(&mut slow, template_for, &[128], 50, Pace::Pps(1e6));
        let delta = s.points[0].latency_cycles_avg - c.points[0].latency_cycles_avg;
        assert!(
            (delta - 200.0).abs() < 2.0,
            "in-device latency isolates the pipeline: delta {delta}"
        );
    }
}
