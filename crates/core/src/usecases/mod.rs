//! Drivers for the seven use-cases of the paper's §3.
//!
//! Each submodule operationalises one bullet of the use-case list — the
//! paper names them but does not define procedures, so each driver here
//! turns the claim into a measurable experiment with a typed report:
//!
//! | §3 bullet | module | report |
//! |---|---|---|
//! | functional testing | [`functional`] | pass/fail per vector + localisation |
//! | performance testing | [`performance`] | throughput/pps/latency sweep |
//! | compiler check | [`compiler_check`] | conformance matrix incl. silent bugs |
//! | architecture check | [`architecture`] | per-dimension limits |
//! | resources quantification | [`resources`] | LUT/FF/BRAM per program |
//! | status monitoring | [`status`] | timeline of internal counters |
//! | comparison | [`comparison`] | full cross-deployment diff |
//!
//! [`coverage`] aggregates them into the paper's Figure 2 matrix by probing
//! what each tool (verifier, external tester, NetDebug) can actually do.

pub mod architecture;
pub mod comparison;
pub mod compiler_check;
pub mod coverage;
pub mod functional;
pub mod performance;
pub mod resources;
pub mod status;
