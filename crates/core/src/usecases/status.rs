//! Status monitoring use-case (§3, sixth bullet): "providing periodic
//! internal status information".
//!
//! The controller samples the register bus at intervals while traffic runs:
//! port counters, stage tap counters, table occupancy and drop counters.
//! The timeline shows load distribution and anomalies (e.g. a stage whose
//! counter stops advancing) *while the device forwards live traffic* —
//! something neither a verifier nor an external tester can produce.

use crate::generator::StreamSpec;
use crate::session::NetDebug;
use serde::{Deserialize, Serialize};

/// One register-bus snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusSample {
    /// Device time when sampled.
    pub at_cycle: u64,
    /// Packets injected so far (generator side).
    pub injected: u64,
    /// (port, rx_packets, tx_packets) triples.
    pub ports: Vec<(u16, u64, u64)>,
    /// (stage name, packets seen).
    pub stages: Vec<(String, u64)>,
    /// (table name, occupancy, capacity, hits, misses).
    pub tables: Vec<(String, usize, u64, u64, u64)>,
}

/// A timeline of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusTimeline {
    /// Samples in time order.
    pub samples: Vec<StatusSample>,
}

impl StatusTimeline {
    /// The per-stage deltas between the first and last sample.
    pub fn stage_deltas(&self) -> Vec<(String, u64)> {
        let (Some(first), Some(last)) = (self.samples.first(), self.samples.last()) else {
            return Vec::new();
        };
        first
            .stages
            .iter()
            .zip(&last.stages)
            .map(|((name, a), (_, b))| (name.clone(), b - a))
            .collect()
    }

    /// Stages that saw no packets across the whole timeline — dead logic or
    /// a hole in test coverage.
    pub fn idle_stages(&self) -> Vec<String> {
        self.stage_deltas()
            .into_iter()
            .filter(|(_, d)| *d == 0)
            .map(|(n, _)| n)
            .collect()
    }
}

/// Take one snapshot of a device through the NetDebug controller.
pub fn snapshot(nd: &NetDebug, injected: u64) -> StatusSample {
    let dev = nd.device();
    let ports = (0..dev.config().ports)
        .map(|p| {
            let s = dev.port_stats(p);
            (p, s.rx_packets, s.tx_packets)
        })
        .collect();
    let stages = dev
        .stage_names()
        .iter()
        .cloned()
        .zip(dev.stage_counts().iter().copied())
        .collect();
    let tables = dev
        .compiled()
        .program
        .tables
        .iter()
        .map(|t| {
            let (hits, misses, occ, cap) = dev.table_stats(&t.name).unwrap_or((0, 0, 0, 0));
            (t.name.clone(), occ, cap, hits, misses)
        })
        .collect();
    StatusSample {
        at_cycle: dev.now(),
        injected,
        ports,
        stages,
        tables,
    }
}

/// Run `traffic` in `samples` slices, snapshotting between slices.
pub fn monitor(nd: &mut NetDebug, traffic: &StreamSpec, samples: usize) -> StatusTimeline {
    let mut timeline = StatusTimeline {
        samples: vec![snapshot(nd, 0)],
    };
    let chunk = (traffic.count / samples.max(1) as u64).max(1);
    let mut sent = 0u64;
    let mut slice = 0u16;
    while sent < traffic.count {
        let n = chunk.min(traffic.count - sent);
        let mut spec = traffic.clone();
        spec.stream = traffic.stream + slice;
        spec.count = n;
        nd.run_stream(&spec);
        sent += n;
        slice += 1;
        timeline.samples.push(snapshot(nd, sent));
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Expectation;
    use netdebug_hw::{Backend, Device};
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, PacketBuilder};

    #[test]
    fn timeline_counts_advance_monotonically() {
        let dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
        let mut nd = NetDebug::new(dev);
        let frame = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(b"status")
        .build();
        let traffic = StreamSpec {
            stream: 100,
            template: frame,
            count: 40,
            rate_pps: Some(1e6),
            as_port: 2,
            sweeps: vec![],
            expect: Expectation::Forward { port: Some(2) },
        };
        let timeline = monitor(&mut nd, &traffic, 4);
        assert_eq!(timeline.samples.len(), 5);
        // Monotone injected counts and device time.
        for w in timeline.samples.windows(2) {
            assert!(w[1].injected >= w[0].injected);
            assert!(w[1].at_cycle >= w[0].at_cycle);
        }
        // All 40 packets traversed the parser stage.
        let deltas = timeline.stage_deltas();
        let parser = deltas.iter().find(|(n, _)| n == "parser:start").unwrap();
        assert_eq!(parser.1, 40);
        // Nothing is idle in the reflector.
        assert!(
            timeline.idle_stages().is_empty(),
            "{:?}",
            timeline.idle_stages()
        );
        // Egress MAC counters visible per port.
        let last = timeline.samples.last().unwrap();
        let port2 = last.ports.iter().find(|(p, _, _)| *p == 2).unwrap();
        assert_eq!(port2.2, 40, "tx on port 2");
    }

    #[test]
    fn idle_stage_detection() {
        // Router with no routes installed: the deparser/egress stages stay
        // idle for drop-only traffic — status monitoring surfaces that.
        let dev = Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap();
        let mut nd = NetDebug::new(dev);
        let frame = PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .payload(&[0u8; 40])
        .build();
        let traffic = StreamSpec {
            stream: 1,
            template: frame,
            count: 10,
            rate_pps: None,
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Drop,
        };
        let timeline = monitor(&mut nd, &traffic, 2);
        let idle = timeline.idle_stages();
        assert!(idle.contains(&"deparser".to_string()), "{idle:?}");
        assert!(idle.contains(&"egress".to_string()));
        // Table occupancy is reported (empty here).
        let last = timeline.samples.last().unwrap();
        assert_eq!(last.tables[0].1, 0);
    }
}
