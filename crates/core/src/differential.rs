//! Differential device testing.
//!
//! The *comparison* use-case, and the engine behind silent-bug detection in
//! the *compiler check* use-case: run identical probe packets through two
//! deployments and diff everything NetDebug can see — the outcome, the
//! output bytes, the egress ports **and the per-stage tap counters**. The
//! stage diff is what external testers cannot do; it turns "these two
//! devices disagree" into "they diverge at `parser:parse_ipv4`".

use crate::probes::Probe;
use netdebug_hw::{Device, Outcome};
use serde::{Deserialize, Serialize};

/// One observed divergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index of the probe that exposed it.
    pub probe_index: usize,
    /// Parser path the probe was steered at.
    pub probe_path: String,
    /// What differed.
    pub detail: String,
    /// Stages reached on device A.
    pub stages_a: Vec<String>,
    /// Stages reached on device B.
    pub stages_b: Vec<String>,
}

/// Result of a differential run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Probes whose behaviour matched.
    pub agreements: usize,
    /// Probes that diverged.
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    /// True when every probe agreed.
    pub fn equivalent(&self) -> bool {
        self.divergences.is_empty()
    }
}

pub(crate) fn stages_reached(dev: &mut Device, port: u16, data: &[u8]) -> (Outcome, Vec<String>) {
    let before: Vec<u64> = dev.stage_counts().to_vec();
    let processed = dev.inject(port, data);
    let after: Vec<u64> = dev.stage_counts().to_vec();
    let stages = dev
        .stage_names()
        .iter()
        .zip(before.iter().zip(&after))
        .filter(|(_, (b, a))| a > b)
        .map(|(n, _)| n.clone())
        .collect();
    (processed.outcome, stages)
}

/// Describe how two observed behaviours differ, or `None` when they agree.
///
/// `stages_*` carry each device's internal view (full stage sets for
/// probe-at-a-time diffing, or just the last stage reached on the batched
/// fleet path) — what lets a divergence be *localised*, not just detected.
/// Shared by the pairwise [`diff_devices`] and the N-backend
/// [`crate::fleet::DifferentialFleet`].
pub(crate) fn outcome_divergence(
    out_a: &Outcome,
    out_b: &Outcome,
    stages_a: &[String],
    stages_b: &[String],
) -> Option<String> {
    match (out_a, out_b) {
        (Outcome::Dropped { reason: ra }, Outcome::Dropped { reason: rb }) => {
            if ra != rb {
                // Internal visibility: the devices' drop counters name
                // different reasons (e.g. "parser reject" vs
                // "mark_to_drop") even when the packet dies either way.
                Some(format!("drop reasons differ: {ra} vs {rb}"))
            } else if stages_a != stages_b {
                Some(format!("both drop ({ra}) but traverse different stages"))
            } else {
                None
            }
        }
        (Outcome::Dropped { reason }, Outcome::Tx { port, .. }) => {
            Some(format!("A drops ({reason}), B forwards to port {port}"))
        }
        (Outcome::Tx { port, .. }, Outcome::Dropped { reason }) => {
            Some(format!("A forwards to port {port}, B drops ({reason})"))
        }
        (Outcome::Tx { port: pa, data: da }, Outcome::Tx { port: pb, data: db }) => {
            if pa != pb {
                Some(format!("egress ports differ: {pa} vs {pb}"))
            } else if da != db {
                Some(format!(
                    "output bytes differ on port {pa} ({} vs {} bytes)",
                    da.len(),
                    db.len()
                ))
            } else if stages_a != stages_b {
                Some("same output but different internal path".to_string())
            } else {
                None
            }
        }
        (Outcome::Flood { data: da }, Outcome::Flood { data: db }) => {
            if da != db {
                Some(format!(
                    "flooded bytes differ ({} vs {} bytes)",
                    da.len(),
                    db.len()
                ))
            } else if stages_a != stages_b {
                Some("both flood but traverse different stages".to_string())
            } else {
                None
            }
        }
        (x, y) => Some(format!("outcome kinds differ: {x:?} vs {y:?}")),
    }
}

/// Run every probe through both devices and report divergences.
pub fn diff_devices(a: &mut Device, b: &mut Device, probes: &[Probe]) -> DiffReport {
    let mut divergences = Vec::new();
    let mut agreements = 0usize;
    for (i, probe) in probes.iter().enumerate() {
        let (out_a, stages_a) = stages_reached(a, 0, &probe.data);
        let (out_b, stages_b) = stages_reached(b, 0, &probe.data);
        let detail = outcome_divergence(&out_a, &out_b, &stages_a, &stages_b);
        match detail {
            Some(detail) => divergences.push(Divergence {
                probe_index: i,
                probe_path: probe.path.clone(),
                detail,
                stages_a,
                stages_b,
            }),
            None => agreements += 1,
        }
    }
    DiffReport {
        agreements,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::parser_path_probes;
    use netdebug_hw::Backend;
    use netdebug_p4::corpus;

    fn deploy(backend: &Backend, src: &str) -> Device {
        Device::deploy_source(backend, src).unwrap()
    }

    #[test]
    fn reference_vs_fixed_sdnet_equivalent() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        let mut a = deploy(&Backend::reference(), corpus::IPV4_FORWARD);
        let mut b = deploy(&Backend::sdnet_fixed(), corpus::IPV4_FORWARD);
        let report = diff_devices(&mut a, &mut b, &probes);
        assert!(report.equivalent(), "{:#?}", report.divergences);
        assert_eq!(report.agreements, probes.len());
    }

    #[test]
    fn reference_vs_sdnet_2018_diverges_on_reject_paths_only() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        let mut a = deploy(&Backend::reference(), corpus::IPV4_FORWARD);
        let mut b = deploy(&Backend::sdnet_2018(), corpus::IPV4_FORWARD);
        let report = diff_devices(&mut a, &mut b, &probes);
        assert!(!report.equivalent());
        for d in &report.divergences {
            assert!(
                probes[d.probe_index].hits_reject,
                "only reject-path probes diverge, got {:?}",
                d
            );
            // Either the internal path or the drop reason pinpoints it.
            assert!(
                d.stages_a != d.stages_b || d.detail.contains("reject"),
                "{d:?}"
            );
        }
    }

    #[test]
    fn comparing_a_program_against_itself_is_clean() {
        let ir = netdebug_p4::compile(corpus::L2_SWITCH).unwrap();
        let probes = parser_path_probes(&ir);
        let mut a = deploy(&Backend::reference(), corpus::L2_SWITCH);
        let mut b = deploy(&Backend::reference(), corpus::L2_SWITCH);
        let report = diff_devices(&mut a, &mut b, &probes);
        assert!(report.equivalent());
    }
}
