//! # NetDebug — a programmable framework for validating data planes
//!
//! Reproduction of Bressana, Zilberman and Soulé, *"A Programmable
//! Framework for Validating Data Planes"* (SIGCOMM 2018 posters/demos),
//! built on the simulated NetFPGA-SUME/SDNet substrate of `netdebug-hw`.
//!
//! The architecture follows the paper's Figure 1:
//!
//! ```text
//!           ┌──────────────────────── Device ───────────────────────┐
//!   host ───┤ register bus                                          │
//!   tool    │   ┌───────────┐    ┌──────────────────┐   ┌─────────┐ │
//!  (this    │   │ test pkt  │───▶│  data plane      │──▶│ output  │ │
//!   crate)  │   │ generator │    │  under test      │   │ checker │ │
//!           │   └───────────┘    │ (P4, any source) │   └─────────┘ │
//!           │        MACs ──────▶│                  │──────▶ MACs   │
//!           │                    └──────────────────┘               │
//!           └───────────────────────────────────────────────────────┘
//! ```
//!
//! * [`generator`] — programmable stream generation, injected *inside* the
//!   device, stamping every packet with a sequence number, timestamp and
//!   CRC;
//! * [`checker`] — line-rate output validation: loss, reordering,
//!   duplication, corruption, latency, and expectation enforcement
//!   (a packet flagged *expect-drop* appearing at an output is how the
//!   SDNet `reject` bug is caught);
//! * [`session`] — the host-side controller tying them together;
//! * [`localize`](mod@localize) — stage-level fault localisation from tap
//!   counters;
//! * [`probes`] / [`differential`] — parser-path packet synthesis and
//!   device-vs-device diffing;
//! * [`fleet`] — N-backend differential fleets: one generated window fed
//!   to every deployment concurrently, verdicts diffed against the
//!   reference member;
//! * [`churn`] — rule churn under load: scripted control-plane mutations
//!   interleaved with traffic windows (epoch-snapshot tables keep the
//!   traffic on the parallel path throughout);
//! * [`runtime`] — the virtual-time event-loop fleet runtime: a timer
//!   wheel over device cycles, same-instant injection coalescing, and a
//!   persistent worker set that multiplexes hundreds of devices onto a
//!   few threads with bit-reproducible ordering;
//! * [`usecases`] — one measurable driver per §3 use-case, plus the
//!   Figure 2 coverage matrix.
//!
//! ## Quickstart
//!
//! ```
//! use netdebug::generator::{Expectation, StreamSpec};
//! use netdebug::session::NetDebug;
//! use netdebug_hw::Backend;
//! use netdebug_p4::corpus;
//! use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
//!
//! // Deploy the paper's case-study router on the buggy SDNet model.
//! let mut nd = NetDebug::deploy(&Backend::sdnet_2018(), corpus::IPV4_FORWARD).unwrap();
//! nd.device_mut()
//!     .install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
//!     .unwrap();
//!
//! // Inject malformed packets that the P4 program must reject…
//! let mut malformed = PacketBuilder::ethernet(
//!         EthernetAddress::new(2, 0, 0, 0, 0, 1),
//!         EthernetAddress::new(2, 0, 0, 0, 0, 2),
//!     )
//!     .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
//!     .udp(1, 2)
//!     .build();
//! malformed[14] = 0x55; // IPv4 "version 5" — the parser must reject
//! let report = nd.run_session(&[StreamSpec::simple(1, malformed, 10, Expectation::Drop)]);
//!
//! // …and the checker catches the forwarded-but-should-drop violation.
//! assert!(!report.passed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod churn;
pub mod differential;
pub mod fleet;
pub mod generator;
pub mod localize;
pub mod probes;
pub mod runtime;
pub mod session;
pub mod usecases;

pub use checker::{Checker, StreamStats, Violation};
pub use churn::{ChurnError, ChurnOp, ChurnSchedule};
pub use fleet::{ChurnBisection, DifferentialFleet, FleetDivergence, FleetError, FleetReport};
pub use generator::{Expectation, FieldSweep, Generator, StreamSpec};
pub use localize::{localize, Localization};
pub use runtime::{
    drive_device_guarded, drive_device_recovering, CulpritFrame, DeviceFault, DeviceRecovery,
    DeviceSink, DeviceTask, FleetRuntime, FlowRun, RecoveryPolicy, RuntimeStats,
    DEFAULT_WATCHDOG_CYCLES,
};
pub use session::{NetDebug, SessionReport};
