//! Rule churn under load: control-plane mutation interleaved with traffic.
//!
//! The paper's central scenario is a tester exercising a deployed data
//! plane *while the control plane keeps installing rules* — routes
//! arriving as traffic flows, policies swapping mid-test. With the
//! epoch-snapshot tables each mutation publishes atomically between
//! batch windows (or even mid-window, through
//! `netdebug_hw::Device::inject_batch_concurrent`), so a churn-heavy
//! workload stays on the sharded parallel path the whole way.
//!
//! A [`ChurnSchedule`] scripts the mutations against window indices;
//! [`crate::session::NetDebug::run_stream_churn`] drives a single device
//! and [`crate::fleet::DifferentialFleet::run_churn`] drives a whole
//! fleet, applying the identical schedule to every member so their
//! verdicts stay comparable window by window.
//!
//! Every scheduled publication also **recompiles the target table's
//! lookup index** (exact hash / LPM buckets — see
//! `netdebug_dataplane::LookupIndex`): the compile cost lands on the
//! control-plane side of the epoch swap, so churned tables keep their
//! O(1)/bucketed applies on the packet path and the in-flight window's
//! flattened `TableView`s still read the index generation they pinned —
//! shard-invariance under churn is property-tested against exactly this
//! republication path.

use netdebug_dataplane::ControlError;
use netdebug_hw::Device;
use netdebug_p4::ir::IrPattern;
use serde::{Deserialize, Serialize};

/// Errors from running a churn schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnError {
    /// A scheduled op was rejected by the control plane.
    Control(ControlError),
    /// The schedule keys an op to a window the stream never runs, so the
    /// op would silently never publish. Caught up front: a churn scenario
    /// that cannot execute as scripted is a misconfiguration, not plain
    /// traffic.
    UnreachableWindow {
        /// The window index the op was keyed to.
        window: u64,
        /// How many windows the stream actually runs.
        windows: u64,
    },
}

impl core::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChurnError::Control(e) => write!(f, "{e}"),
            ChurnError::UnreachableWindow { window, windows } => write!(
                f,
                "churn op scheduled before window {window}, but the stream only runs {windows} window(s)"
            ),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<ControlError> for ChurnError {
    fn from(e: ControlError) -> Self {
        ChurnError::Control(e)
    }
}

/// One scripted control-plane mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// Install an exact-match entry.
    Exact {
        /// Table name.
        table: String,
        /// One value per key.
        keys: Vec<u128>,
        /// Bound action.
        action: String,
        /// Action arguments.
        args: Vec<u128>,
    },
    /// Install an LPM entry (priority = prefix length).
    Lpm {
        /// Table name.
        table: String,
        /// Prefix value.
        prefix: u128,
        /// Prefix length in bits.
        prefix_len: u16,
        /// Bound action.
        action: String,
        /// Action arguments.
        args: Vec<u128>,
    },
    /// Install an arbitrary entry with an explicit priority.
    Install {
        /// Table name.
        table: String,
        /// One pattern per key.
        patterns: Vec<IrPattern>,
        /// Bound action.
        action: String,
        /// Action arguments.
        args: Vec<u128>,
        /// Priority (higher wins).
        priority: i32,
    },
    /// Remove the entry with exactly these patterns and priority.
    Remove {
        /// Table name.
        table: String,
        /// Patterns of the entry to remove.
        patterns: Vec<IrPattern>,
        /// Priority of the entry to remove.
        priority: i32,
    },
    /// Remove every entry from a table.
    Clear {
        /// Table name.
        table: String,
    },
}

impl ChurnOp {
    /// Apply this mutation to a device. Installs go through
    /// [`Device::install`] and friends — the modeled vendor *driver*
    /// path, so backend bug transforms such as priority inversion apply
    /// to churned rules exactly as they would to pre-deployed ones, and
    /// differential churn scenarios keep their bug-detection power.
    /// Removals go through the raw epoch-publishing handle (no driver
    /// bug is modeled for entry removal); a [`ChurnOp::Remove`] of an
    /// absent entry is a no-op, matching idempotent re-play of a
    /// schedule. Either way the mutation lands as an atomic epoch
    /// publication.
    pub fn apply(&self, device: &mut Device) -> Result<(), ControlError> {
        match self {
            ChurnOp::Exact {
                table,
                keys,
                action,
                args,
            } => {
                device.install_exact(table, keys.clone(), action, args.clone())?;
            }
            ChurnOp::Lpm {
                table,
                prefix,
                prefix_len,
                action,
                args,
            } => {
                device.install_lpm(table, *prefix, *prefix_len, action, args.clone())?;
            }
            ChurnOp::Install {
                table,
                patterns,
                action,
                args,
                priority,
            } => {
                device.install(table, patterns.clone(), action, args.clone(), *priority)?;
            }
            ChurnOp::Remove {
                table,
                patterns,
                priority,
            } => {
                device.control_plane().remove(table, patterns, *priority)?;
            }
            ChurnOp::Clear { table } => {
                device.control_plane().clear(table)?;
            }
        }
        Ok(())
    }
}

/// A scripted sequence of control-plane mutations keyed to traffic
/// windows: every op scheduled for window `w` publishes its epoch
/// immediately **before** window `w` is injected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// `(window index, mutation)` pairs; order within a window is
    /// preserved.
    pub ops: Vec<(u64, ChurnOp)>,
}

impl ChurnSchedule {
    /// An empty schedule (plain traffic).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `op` before window `window`.
    pub fn before_window(mut self, window: u64, op: ChurnOp) -> Self {
        self.ops.push((window, op));
        self
    }

    /// Total scheduled mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply every op scheduled for `window`, in schedule order.
    pub fn apply_for_window(
        &self,
        window: u64,
        device: &mut Device,
    ) -> Result<usize, ControlError> {
        let mut applied = 0;
        for (w, op) in &self.ops {
            if *w == window {
                op.apply(device)?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Check that every scheduled op is keyed to a window a stream of
    /// `windows` windows will actually run — a schedule referencing a
    /// later window would otherwise silently never publish.
    pub fn validate(&self, windows: u64) -> Result<(), ChurnError> {
        for (w, _) in &self.ops {
            if *w >= windows {
                return Err(ChurnError::UnreachableWindow {
                    window: *w,
                    windows,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::DifferentialFleet;
    use crate::generator::{Expectation, StreamSpec};
    use crate::session::NetDebug;
    use netdebug_hw::Backend;
    use netdebug_p4::corpus;
    use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn frame(dst: Ipv4Address) -> Vec<u8> {
        PacketBuilder::ethernet(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), dst)
        .udp(1, 2)
        .build()
    }

    fn route_op() -> ChurnOp {
        ChurnOp::Lpm {
            table: "ipv4_lpm".into(),
            prefix: 0x0A00_0000,
            prefix_len: 8,
            action: "ipv4_forward".into(),
            args: vec![0xAA, 1],
        }
    }

    #[test]
    fn route_arrives_mid_stream() {
        // Three windows of traffic to 10.0.0.9; the covering route is
        // installed before window 1. Window 0 must drop (no route),
        // windows 1 and 2 must forward — the checker sees both phases.
        let mut nd = NetDebug::deploy(&Backend::reference(), corpus::IPV4_FORWARD).unwrap();
        nd.set_shards(4);
        let spec = StreamSpec::simple(
            1,
            frame(Ipv4Address::new(10, 0, 0, 9)),
            3 * NetDebug::STREAM_WINDOW,
            Expectation::Any,
        );
        let schedule = ChurnSchedule::new().before_window(1, route_op());
        nd.run_stream_churn(&spec, &schedule).unwrap();
        let stats = &nd.checker().streams()[&1];
        assert_eq!(stats.sent, 3 * NetDebug::STREAM_WINDOW);
        assert_eq!(
            stats.dropped,
            NetDebug::STREAM_WINDOW,
            "window 0 has no route"
        );
        assert_eq!(
            stats.received,
            2 * NetDebug::STREAM_WINDOW,
            "windows 1-2 forward"
        );
    }

    #[test]
    fn churn_is_shard_invariant() {
        // The same churned stream on a 1-shard and an 8-shard device must
        // produce identical checker statistics: epoch publication between
        // windows is deterministic on every path.
        let run = |shards: usize| {
            let mut nd = NetDebug::deploy(&Backend::reference(), corpus::IPV4_FORWARD).unwrap();
            nd.set_shards(shards);
            let spec = StreamSpec::simple(
                1,
                frame(Ipv4Address::new(10, 1, 2, 3)),
                4 * NetDebug::STREAM_WINDOW,
                Expectation::Any,
            );
            let schedule = ChurnSchedule::new()
                .before_window(1, route_op())
                .before_window(
                    2,
                    ChurnOp::Lpm {
                        table: "ipv4_lpm".into(),
                        prefix: 0x0A01_0000,
                        prefix_len: 16,
                        action: "ipv4_forward".into(),
                        args: vec![0xBB, 2],
                    },
                )
                .before_window(
                    3,
                    ChurnOp::Clear {
                        table: "ipv4_lpm".into(),
                    },
                );
            nd.run_stream_churn(&spec, &schedule).unwrap();
            nd.checker().streams()[&1].clone()
        };
        let one = run(1);
        for shards in [2, 4, 8] {
            assert_eq!(
                one,
                run(shards),
                "churned stream diverged at {shards} shards"
            );
        }
        // Sanity on the phases: dropped in windows 0 and 3, forwarded in
        // 1 and 2.
        assert_eq!(one.dropped, 2 * NetDebug::STREAM_WINDOW);
        assert_eq!(one.received, 2 * NetDebug::STREAM_WINDOW);
    }

    #[test]
    fn fleet_churn_diffs_reference_against_buggy_backend() {
        // Churn across a fleet: both members receive the identical
        // schedule; the malformed-frame stream exposes the SDNet reject
        // bug in the churned setting exactly as in the static one.
        let mut fleet = DifferentialFleet::new()
            .with(
                "reference",
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
            )
            .with(
                "sdnet-2018",
                Device::deploy_source(&Backend::sdnet_2018(), corpus::IPV4_FORWARD).unwrap(),
            );
        let mut bad = frame(Ipv4Address::new(10, 0, 0, 9));
        bad[14] = 0x55; // version 5: must be rejected
        let spec = StreamSpec::simple(7, bad, 24, Expectation::Any);
        let schedule = ChurnSchedule::new().before_window(1, route_op());
        let report = fleet.run_churn(&spec, &schedule, 8).unwrap();
        assert_eq!(report.packets, 24);
        assert!(!report.equivalent(), "the reject bug must survive churn");
        assert_eq!(report.diverging_members(), vec!["sdnet-2018"]);
    }

    #[test]
    fn churned_installs_go_through_the_modeled_driver() {
        // Churned rules arrive through the vendor driver stack, so driver
        // bug transforms must apply to them: a priority-inverting backend
        // diverges from the reference once churn installs overlapping
        // routes (the broad /8 shadows the /16 on the buggy member).
        use netdebug_hw::{ArchLimits, BugSpec, SdnetProfile};
        let inverted = Backend::SdnetSim(SdnetProfile {
            name: "prio-inverted".into(),
            bugs: vec![BugSpec::PriorityInverted],
            limits: ArchLimits::UNLIMITED,
            faults: vec![],
        });
        let mut fleet = DifferentialFleet::new()
            .with(
                "reference",
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
            )
            .with(
                "prio-inverted",
                Device::deploy_source(&inverted, corpus::IPV4_FORWARD).unwrap(),
            );
        // Traffic to 10.1.2.3: window 0 installs the /8 (port 1), window 1
        // the more-specific /16 (port 2). The reference switches to port 2
        // in window 1; the inverted member keeps preferring the /8.
        let spec = StreamSpec::simple(
            9,
            frame(Ipv4Address::new(10, 1, 2, 3)),
            32,
            Expectation::Any,
        );
        let schedule = ChurnSchedule::new()
            .before_window(0, route_op())
            .before_window(
                1,
                ChurnOp::Lpm {
                    table: "ipv4_lpm".into(),
                    prefix: 0x0A01_0000,
                    prefix_len: 16,
                    action: "ipv4_forward".into(),
                    args: vec![0xBB, 2],
                },
            );
        let report = fleet.run_churn(&spec, &schedule, 16).unwrap();
        assert_eq!(
            report.diverging_members(),
            vec!["prio-inverted"],
            "driver-level priority inversion must stay detectable under churn"
        );
        // Window 0 (single route) agrees; every window-1 packet diverges.
        assert_eq!(report.agreements, 16);
        assert_eq!(report.divergences.len(), 16);
        assert!(report.divergences.iter().all(|d| d.index >= 16));
    }

    #[test]
    fn unreachable_window_is_rejected_up_front() {
        // An op keyed past the last window would silently never publish;
        // both drivers must refuse to start instead of reporting plain
        // traffic as a churn scenario.
        let mut nd = NetDebug::deploy(&Backend::reference(), corpus::IPV4_FORWARD).unwrap();
        let spec = StreamSpec::simple(
            1,
            frame(Ipv4Address::new(10, 0, 0, 9)),
            2 * NetDebug::STREAM_WINDOW, // 2 windows: indices 0 and 1
            Expectation::Any,
        );
        let schedule = ChurnSchedule::new().before_window(2, route_op());
        assert_eq!(
            nd.run_stream_churn(&spec, &schedule),
            Err(ChurnError::UnreachableWindow {
                window: 2,
                windows: 2
            })
        );
        // Nothing ran: the stream was never even opened for injection.
        assert!(!nd.checker().streams().contains_key(&1));

        let mut fleet = DifferentialFleet::new().with(
            "only",
            Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap(),
        );
        let err = fleet.run_churn(&spec, &schedule, NetDebug::STREAM_WINDOW);
        assert!(matches!(err, Err(ChurnError::UnreachableWindow { .. })));
    }

    #[test]
    fn fleet_churn_agrees_across_shard_counts() {
        let build = |shards: usize| {
            let mut dev =
                Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap();
            dev.set_shards(shards);
            dev
        };
        let mut fleet = DifferentialFleet::new()
            .with("one-shard", build(1))
            .with("four-shards", build(4))
            .with("eight-shards", build(8));
        let spec = StreamSpec::simple(
            3,
            frame(Ipv4Address::new(10, 0, 0, 9)),
            48,
            Expectation::Any,
        );
        let schedule = ChurnSchedule::new()
            .before_window(1, route_op())
            .before_window(
                2,
                ChurnOp::Clear {
                    table: "ipv4_lpm".into(),
                },
            );
        let report = fleet.run_churn(&spec, &schedule, 16).unwrap();
        assert!(
            report.equivalent(),
            "shard count must not leak into churned verdicts: {:#?}",
            report.divergences
        );
    }
}
