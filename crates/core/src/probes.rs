//! Probe packet generation from the parse graph.
//!
//! NetDebug users "generate custom test packets" steered at specific parser
//! paths. This module automates that: it walks a program's parse graph and
//! emits one byte template per reachable parser path, writing each select
//! arm's constant into the bytes of the field the selector reads. The
//! result is a small packet corpus that exercises every accept *and reject*
//! edge of the parser — the inputs that exposed the SDNet bug.

use netdebug_p4::ir::{self, IrExpr, IrPattern, IrTransition, ParserOp, TransTarget};

/// Maximum probe templates generated per program.
const MAX_PROBES: usize = 64;

/// Extra payload bytes appended after the parsed headers.
const PAYLOAD_PAD: usize = 16;

/// One generated probe.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Packet bytes.
    pub data: Vec<u8>,
    /// Human-readable path description (state names and chosen arms).
    pub path: String,
    /// True if this probe is built to reach a `reject`.
    pub hits_reject: bool,
}

/// Generate probe packets covering the parser paths of `program`.
pub fn parser_path_probes(program: &ir::Program) -> Vec<Probe> {
    let mut probes = Vec::new();
    walk(
        program,
        0,
        Vec::new(),
        Vec::new(),
        String::new(),
        &mut probes,
        0,
    );
    probes
}

/// Byte layout bookkeeping: which packet bit range holds each header.
#[derive(Debug, Clone)]
struct Placed {
    header: usize,
    at_bit: usize,
}

fn walk(
    program: &ir::Program,
    state_id: usize,
    mut bytes: Vec<u8>,
    mut placed: Vec<Placed>,
    mut path: String,
    probes: &mut Vec<Probe>,
    depth: usize,
) {
    if probes.len() >= MAX_PROBES || depth > 16 {
        return;
    }
    let state = &program.parser.states[state_id];
    if !path.is_empty() {
        path.push_str(" -> ");
    }
    path.push_str(&state.name);

    for op in &state.ops {
        if let ParserOp::Extract(h) = op {
            let at_bit = bytes.len() * 8;
            // Fill unconstrained header bytes with a distinctive non-zero
            // pattern so that field rewrites (MAC swaps, TTL decrements)
            // are visible in the output, and accidental zeros (TTL 0!)
            // don't steer pipeline conditionals. Select-key bytes are
            // overwritten below when an arm is steered.
            let w = program.headers[*h].byte_width();
            let base = bytes.len();
            for i in 0..w {
                bytes.push(0x20 | (((base + i) as u8) & 0x0F));
            }
            placed.push(Placed { header: *h, at_bit });
        }
    }

    match &state.transition {
        IrTransition::Accept => finish(bytes, path, false, probes),
        IrTransition::Reject => finish(bytes, path, true, probes),
        IrTransition::Goto(next) => walk(program, *next, bytes, placed, path, probes, depth + 1),
        IrTransition::Select {
            keys,
            arms,
            default,
        } => {
            for (i, arm) in arms.iter().enumerate() {
                let mut b = bytes.clone();
                let mut ok = true;
                let mut chosen: Vec<u128> = Vec::with_capacity(keys.len());
                for (key, pattern) in keys.iter().zip(&arm.patterns) {
                    match pattern {
                        IrPattern::Any => {
                            // Leave the bytes as they are; record the value
                            // actually present for shadowing checks.
                            chosen.push(read_key(program, &placed, key, &b).unwrap_or(0));
                        }
                        _ => {
                            if !write_pattern(program, &placed, key, pattern, &mut b) {
                                ok = false;
                                break;
                            }
                            chosen.push(match pattern {
                                IrPattern::Value(v) => *v,
                                IrPattern::Mask { value, mask } => value & mask,
                                IrPattern::Range { lo, .. } => *lo,
                                IrPattern::Any => unreachable!(),
                            });
                        }
                    }
                }
                if !ok {
                    continue;
                }
                // Skip if an earlier arm shadows the value we steered at.
                if arms[..i].iter().any(|earlier| {
                    earlier
                        .patterns
                        .iter()
                        .zip(&chosen)
                        .all(|(p, v)| p.matches(*v))
                }) {
                    continue;
                }
                let arm_desc = format!("{}[{}]", path, describe_target(program, &arm.target));
                match arm.target {
                    TransTarget::Accept => finish(b, arm_desc, false, probes),
                    TransTarget::Reject => finish(b, arm_desc, true, probes),
                    TransTarget::State(next) => walk(
                        program,
                        next,
                        b,
                        placed.clone(),
                        arm_desc,
                        probes,
                        depth + 1,
                    ),
                }
                if probes.len() >= MAX_PROBES {
                    return;
                }
            }
            // Default edge (P4: no matching arm). Only reachable when some
            // key value misses every arm — skip entirely when an arm is a
            // catch-all or the key cannot be steered.
            let mut b = bytes;
            let steerable = if arms.is_empty() {
                true
            } else if let Some(first_key) = keys.first() {
                let taken: Vec<&IrPattern> = arms.iter().map(|a| &a.patterns[0]).collect();
                match unmatched_value(first_key, &taken, program) {
                    Some(v) => write_value(program, &placed, first_key, v, &mut b),
                    None => false,
                }
            } else {
                false
            };
            if steerable {
                let desc = format!("{}[{}]", path, describe_target(program, default));
                match default {
                    TransTarget::Accept => finish(b, desc, false, probes),
                    TransTarget::Reject => finish(b, desc, true, probes),
                    TransTarget::State(next) => {
                        walk(program, *next, b, placed, desc, probes, depth + 1)
                    }
                }
            }
        }
    }
}

fn finish(mut bytes: Vec<u8>, path: String, hits_reject: bool, probes: &mut Vec<Probe>) {
    bytes.extend(std::iter::repeat_n(0xA5, PAYLOAD_PAD));
    probes.push(Probe {
        data: bytes,
        path,
        hits_reject,
    });
}

fn describe_target(program: &ir::Program, t: &TransTarget) -> String {
    match t {
        TransTarget::Accept => "accept".to_string(),
        TransTarget::Reject => "reject".to_string(),
        TransTarget::State(s) => program.parser.states[*s].name.clone(),
    }
}

/// Write a concrete value satisfying `pattern` into the packet bytes that
/// back `key`. Returns false if the key is not a plain field reference.
fn write_pattern(
    program: &ir::Program,
    placed: &[Placed],
    key: &IrExpr,
    pattern: &IrPattern,
    bytes: &mut [u8],
) -> bool {
    let value = match pattern {
        IrPattern::Value(v) => *v,
        IrPattern::Mask { value, mask } => value & mask,
        IrPattern::Range { lo, .. } => *lo,
        IrPattern::Any => return true,
    };
    write_value(program, placed, key, value, bytes)
}

fn write_value(
    program: &ir::Program,
    placed: &[Placed],
    key: &IrExpr,
    value: u128,
    bytes: &mut [u8],
) -> bool {
    let IrExpr::Field(h, f) = key else {
        return false;
    };
    let Some(p) = placed.iter().rev().find(|p| p.header == *h) else {
        return false;
    };
    let field = &program.headers[*h].fields[*f];
    let bit = p.at_bit + field.offset_bits as usize;
    netdebug_dataplane::bits::write_bits(bytes, bit, field.width_bits as usize, value);
    true
}

/// Read the current value of a field-backed key from the packet bytes.
fn read_key(program: &ir::Program, placed: &[Placed], key: &IrExpr, bytes: &[u8]) -> Option<u128> {
    let IrExpr::Field(h, f) = key else {
        return None;
    };
    let p = placed.iter().rev().find(|p| p.header == *h)?;
    let field = &program.headers[*h].fields[*f];
    let bit = p.at_bit + field.offset_bits as usize;
    Some(netdebug_dataplane::bits::read_bits(
        bytes,
        bit,
        field.width_bits as usize,
    ))
}

/// A value of the key's width matching none of the given patterns (used to
/// steer the select's default edge).
fn unmatched_value(key: &IrExpr, patterns: &[&IrPattern], program: &ir::Program) -> Option<u128> {
    let width = key.width(program);
    let max = ir::all_ones(width);
    // Try a few candidates; packet fields are wide enough that one of these
    // almost always misses every arm.
    for candidate in [max, max - 1, 0x5A, 1, 0].iter().copied() {
        let v = candidate & max;
        if patterns.iter().all(|p| !p.matches(v)) {
            return Some(v);
        }
    }
    (0..=max.min(1 << 16)).find(|v| patterns.iter().all(|p| !p.matches(*v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdebug_dataplane::{Dataplane, DropReason, Verdict};
    use netdebug_p4::corpus;

    #[test]
    fn probes_cover_reject_and_accept_paths() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        assert!(probes.iter().any(|p| p.hits_reject), "reject probe present");
        assert!(probes.iter().any(|p| !p.hits_reject));
        // At least: eth-only accept, ipv4 accept, ipv4 reject.
        assert!(probes.len() >= 3, "{}", probes.len());
    }

    #[test]
    fn probes_actually_take_their_paths() {
        let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
        let probes = parser_path_probes(&ir);
        let mut dp = Dataplane::new(ir);
        for probe in &probes {
            let (verdict, trace) = dp.process(0, &probe.data, 0);
            if probe.hits_reject {
                assert_eq!(
                    verdict,
                    Verdict::Drop(DropReason::ParserReject),
                    "probe {} must reject",
                    probe.path
                );
            } else {
                assert!(
                    !trace.parser_rejected(),
                    "probe {} must not reject: {:?}",
                    probe.path,
                    trace
                );
            }
        }
    }

    #[test]
    fn vlan_router_probes_reach_deep_states() {
        let ir = netdebug_p4::compile(corpus::VLAN_ROUTER).unwrap();
        let probes = parser_path_probes(&ir);
        // Paths: eth-only, vlan-only, vlan+ipv4 (accept+reject), ipv4
        // (accept+reject) …
        assert!(probes.len() >= 5, "{}", probes.len());
        assert!(probes
            .iter()
            .any(|p| p.path.contains("parse_vlan") && p.path.contains("parse_ipv4")));
    }

    #[test]
    fn deep_parser_probe_chain() {
        let ir = netdebug_p4::compile(corpus::FEATURE_DEEP_PARSER).unwrap();
        let probes = parser_path_probes(&ir);
        let longest = probes
            .iter()
            .map(|p| p.path.matches("->").count())
            .max()
            .unwrap();
        assert!(longest >= 7, "deepest chain explored: {longest}");
    }
}
