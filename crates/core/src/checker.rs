//! The output packet checker.
//!
//! NetDebug's second in-device module (Figure 1): it sits on the data
//! plane's output, in parallel with the egress MACs, and verifies every
//! packet **at line rate, in real time**. For each frame it locates the
//! test header, validates the payload CRC, updates per-stream accounting
//! (sequence gaps, reordering, duplication, latency) and enforces the
//! stream's expectation — in particular, a frame flagged `EXPECT_DROP`
//! appearing at an output is an immediate violation, which is exactly how
//! the paper's prototype caught the SDNet reject bug.

use crate::generator::{find_test_header, Expectation};
use netdebug_hw::{Outcome, Processed};
use netdebug_packet::testhdr::FLAG_EXPECT_DROP;
use netdebug_packet::TestHeader;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A violation detected by the checker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A packet that the data plane was required to drop reached an output.
    ForwardedButExpectedDrop {
        /// Stream id.
        stream: u16,
        /// Sequence number.
        seq: u64,
        /// Port it (wrongly) left on.
        port: u16,
    },
    /// A packet expected to be forwarded was dropped inside the device.
    DroppedButExpectedForward {
        /// Stream id.
        stream: u16,
        /// Sequence number.
        seq: u64,
        /// The last pipeline stage the packet reached (from the taps).
        last_stage: String,
    },
    /// A packet left on the wrong port.
    WrongPort {
        /// Stream id.
        stream: u16,
        /// Sequence number.
        seq: u64,
        /// Observed port.
        got: u16,
        /// Required port.
        want: u16,
    },
    /// Payload CRC mismatch: the data plane corrupted the packet.
    Corrupted {
        /// Stream id.
        stream: u16,
        /// Sequence number.
        seq: u64,
    },
    /// An output frame carried no (or an unreadable) test header.
    Unrecognised {
        /// Port it appeared on.
        port: u16,
    },
}

/// Latency histogram with fixed power-of-two cycle buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket upper bounds in cycles: `1<<i`.
    pub buckets: Vec<u64>,
    min: u64,
    max: u64,
    sum: u64,
    n: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; 24],
            min: u64::MAX,
            max: 0,
            sum: 0,
            n: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample (cycles).
    pub fn record(&mut self, cycles: u64) {
        let idx = (64 - cycles.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.min = self.min.min(cycles);
        self.max = self.max.max(cycles);
        self.sum += cycles;
        self.n += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Minimum, or 0 with no samples.
    pub fn min(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }
}

/// Per-stream accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Packets the generator reported sending.
    pub sent: u64,
    /// Packets seen at outputs with a valid header.
    pub received: u64,
    /// Packets confirmed dropped (for `Expectation::Drop` streams this is
    /// success; for others it feeds `lost`).
    pub dropped: u64,
    /// Out-of-order arrivals (sequence lower than the highest seen).
    pub reordered: u64,
    /// Duplicate sequence numbers.
    pub duplicates: u64,
    /// CRC failures.
    pub corrupted: u64,
    /// Latency distribution in device cycles (injection → output).
    pub latency: LatencyHistogram,
    /// Highest sequence seen.
    pub highest_seq: Option<u64>,
}

impl StreamStats {
    /// Packets that neither arrived nor were accounted as expected drops.
    pub fn lost(&self) -> u64 {
        self.sent.saturating_sub(self.received + self.dropped)
    }
}

/// The checker module.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    streams: HashMap<u16, StreamStats>,
    expectations: HashMap<u16, Expectation>,
    violations: Vec<Violation>,
    seen_seqs: HashMap<u16, Vec<u64>>,
    /// Cycles of checker work per packet (line-rate budget accounting).
    pub check_cycles_per_packet: u64,
    packets_checked: u64,
}

impl Checker {
    /// Create a checker. The per-packet cost models the hardware pipeline:
    /// header match + CRC + counter update fits in 2 cycles.
    pub fn new() -> Self {
        Checker {
            check_cycles_per_packet: 2,
            ..Default::default()
        }
    }

    /// Register a stream's expectation and planned packet count.
    pub fn open_stream(&mut self, stream: u16, expect: Expectation, planned: u64) {
        self.expectations.insert(stream, expect);
        self.streams.entry(stream).or_default().sent = planned;
    }

    /// Total packets inspected.
    pub fn packets_checked(&self) -> u64 {
        self.packets_checked
    }

    /// All violations so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Per-stream statistics.
    pub fn stream(&self, stream: u16) -> Option<&StreamStats> {
        self.streams.get(&stream)
    }

    /// All streams.
    pub fn streams(&self) -> &HashMap<u16, StreamStats> {
        &self.streams
    }

    /// Feed one device outcome (the device's output side) to the checker.
    ///
    /// `now_cycles` is the device time when the packet appeared at the
    /// output; `last_stage` comes from the stage taps and is only used to
    /// annotate drop violations.
    pub fn observe(&mut self, outcome: &Outcome, now_cycles: u64, last_stage: &str) {
        self.packets_checked += 1;
        match outcome {
            Outcome::Tx { port, data } => self.observe_output(*port, data, now_cycles),
            Outcome::Flood { data } => {
                // Count the flood once (the checker taps the pipeline output
                // before replication).
                self.observe_output(u16::MAX, data, now_cycles);
            }
            Outcome::Dropped { .. } => {
                // Drops are only attributable via the generator's records;
                // session bookkeeping calls `observe_drop` directly.
                let _ = last_stage;
            }
        }
    }

    fn observe_output(&mut self, port: u16, data: &[u8], now_cycles: u64) {
        let Some(off) = find_test_header(data) else {
            self.violations.push(Violation::Unrecognised { port });
            return;
        };
        let h = TestHeader::new_unchecked(&data[off..]);
        let stream = h.stream();
        let seq = h.seq();
        let crc_ok = h.verify_payload();
        let ts = h.ts_cycles();
        let expect_drop = h.flags() & FLAG_EXPECT_DROP != 0;

        let stats = self.streams.entry(stream).or_default();
        stats.received += 1;
        if let Some(high) = stats.highest_seq {
            if seq < high {
                stats.reordered += 1;
            }
        }
        stats.highest_seq = Some(stats.highest_seq.map_or(seq, |h| h.max(seq)));
        let seen = self.seen_seqs.entry(stream).or_default();
        if seen.contains(&seq) {
            stats.duplicates += 1;
        } else {
            seen.push(seq);
        }
        if !crc_ok {
            stats.corrupted += 1;
            self.violations.push(Violation::Corrupted { stream, seq });
        }
        stats.latency.record(now_cycles.saturating_sub(ts));

        // Expectation enforcement. The EXPECT_DROP flag in the packet
        // itself lets the hardware checker flag violations with no host
        // round trip — this is the paper's detection mechanism.
        if expect_drop {
            self.violations
                .push(Violation::ForwardedButExpectedDrop { stream, seq, port });
            return;
        }
        if let Some(Expectation::Forward { port: Some(want) }) = self.expectations.get(&stream) {
            if port != u16::MAX && port != *want {
                self.violations.push(Violation::WrongPort {
                    stream,
                    seq,
                    got: port,
                    want: *want,
                });
            }
        }
    }

    /// Feed one device outcome for a known generated packet (stream
    /// `stream`, sequence `seq`) to the checker.
    ///
    /// This is the streaming seam [`NetDebug::run_stream`] drives: the
    /// device hands each [`Processed`] outcome to the checker as soon as
    /// it is accounted, so no window of outcomes ever materialises.
    /// Dropped packets are attributed directly (the generator knows what
    /// it injected); surviving packets self-identify via their test
    /// header, as the data plane may have rewritten them.
    ///
    /// [`NetDebug::run_stream`]: ../session/struct.NetDebug.html#method.run_stream
    pub fn observe_processed(&mut self, stream: u16, seq: u64, p: &Processed) {
        match &p.outcome {
            Outcome::Dropped { .. } => self.observe_drop(stream, seq, &p.last_stage),
            outcome => self.observe(outcome, p.done_at_cycle, &p.last_stage),
        }
    }

    /// Feed one whole injected window to the checker: `processed[i]` is
    /// the device's outcome for stream `stream`'s packet `first_seq + i`.
    /// Equivalent to calling [`Checker::observe_processed`] per packet.
    pub fn observe_batch(&mut self, stream: u16, first_seq: u64, processed: &[Processed]) {
        for (i, p) in processed.iter().enumerate() {
            self.observe_processed(stream, first_seq + i as u64, p);
        }
    }

    /// Record that a generated packet was dropped inside the device.
    pub fn observe_drop(&mut self, stream: u16, seq: u64, last_stage: &str) {
        let stats = self.streams.entry(stream).or_default();
        stats.dropped += 1;
        match self.expectations.get(&stream) {
            Some(Expectation::Drop) | Some(Expectation::Any) | None => {}
            Some(Expectation::Forward { .. }) => {
                self.violations.push(Violation::DroppedButExpectedForward {
                    stream,
                    seq,
                    last_stage: last_stage.to_string(),
                });
            }
        }
    }

    /// Can this checker sustain the given packet rate at `clock_hz`?
    ///
    /// The hardware checker processes one packet per
    /// `check_cycles_per_packet`; software checkers (the alternative the
    /// paper argues against) are orders of magnitude slower — see the
    /// `line_rate` bench.
    pub fn sustains_pps(&self, pps: f64, clock_hz: f64) -> bool {
        pps * self.check_cycles_per_packet as f64 <= clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, StreamSpec};

    fn gen_frame(stream: u16, seq: u64, ts: u64, expect: Expectation) -> Vec<u8> {
        let mut g = Generator::new();
        let spec = StreamSpec::simple(stream, vec![0x55; 18], 100, expect);
        g.build(&spec, seq, ts).data
    }

    #[test]
    fn accounts_ordering_latency_and_loss() {
        let mut c = Checker::new();
        c.open_stream(1, Expectation::Forward { port: Some(2) }, 5);
        for (seq, ts, now) in [(0u64, 0u64, 50u64), (1, 100, 160), (3, 300, 420)] {
            let f = gen_frame(1, seq, ts, Expectation::Forward { port: Some(2) });
            c.observe(&Outcome::Tx { port: 2, data: f }, now, "egress");
        }
        // Out-of-order arrival of seq 2 after 3.
        let f = gen_frame(1, 2, 200, Expectation::Forward { port: Some(2) });
        c.observe(&Outcome::Tx { port: 2, data: f }, 500, "egress");
        // Duplicate of seq 3.
        let f = gen_frame(1, 3, 300, Expectation::Forward { port: Some(2) });
        c.observe(&Outcome::Tx { port: 2, data: f }, 520, "egress");

        let s = c.stream(1).unwrap();
        assert_eq!(s.received, 5);
        assert_eq!(s.reordered, 1);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.lost(), 0); // sent=5, received=5
        assert_eq!(s.latency.min(), 50);
        assert_eq!(s.latency.max(), 300);
        assert!(s.latency.mean() > 0.0);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn expect_drop_violation_detected() {
        // The reject-bug detection mechanism: EXPECT_DROP packet at output.
        let mut c = Checker::new();
        c.open_stream(9, Expectation::Drop, 1);
        let f = gen_frame(9, 0, 0, Expectation::Drop);
        c.observe(&Outcome::Tx { port: 1, data: f }, 10, "egress");
        assert_eq!(
            c.violations(),
            &[Violation::ForwardedButExpectedDrop {
                stream: 9,
                seq: 0,
                port: 1
            }]
        );
    }

    #[test]
    fn expected_drop_counts_clean() {
        let mut c = Checker::new();
        c.open_stream(9, Expectation::Drop, 2);
        c.observe_drop(9, 0, "parser:parse_ipv4");
        c.observe_drop(9, 1, "parser:parse_ipv4");
        let s = c.stream(9).unwrap();
        assert_eq!(s.dropped, 2);
        assert_eq!(s.lost(), 0);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn unexpected_drop_localised() {
        let mut c = Checker::new();
        c.open_stream(4, Expectation::Forward { port: None }, 1);
        c.observe_drop(4, 0, "table:ipv4_lpm");
        assert_eq!(
            c.violations(),
            &[Violation::DroppedButExpectedForward {
                stream: 4,
                seq: 0,
                last_stage: "table:ipv4_lpm".to_string()
            }]
        );
    }

    #[test]
    fn wrong_port_detected() {
        let mut c = Checker::new();
        c.open_stream(2, Expectation::Forward { port: Some(3) }, 1);
        let f = gen_frame(2, 0, 0, Expectation::Forward { port: Some(3) });
        c.observe(&Outcome::Tx { port: 1, data: f }, 5, "egress");
        assert!(matches!(
            c.violations()[0],
            Violation::WrongPort {
                got: 1,
                want: 3,
                ..
            }
        ));
    }

    #[test]
    fn corruption_detected() {
        let mut c = Checker::new();
        c.open_stream(5, Expectation::Forward { port: None }, 1);
        let mut f = gen_frame(5, 0, 0, Expectation::Forward { port: None });
        let n = f.len();
        f[n - 1] ^= 0xFF; // corrupt a payload byte after the CRC was stamped
        c.observe(&Outcome::Tx { port: 0, data: f }, 5, "egress");
        assert!(matches!(c.violations()[0], Violation::Corrupted { .. }));
    }

    #[test]
    fn unrecognised_frames_flagged() {
        let mut c = Checker::new();
        c.observe(
            &Outcome::Tx {
                port: 0,
                data: vec![0u8; 64],
            },
            5,
            "egress",
        );
        assert!(matches!(
            c.violations()[0],
            Violation::Unrecognised { port: 0 }
        ));
    }

    #[test]
    fn line_rate_budget() {
        let c = Checker::new();
        // 2 cycles/packet at 200 MHz sustains 100 Mpps — far above the
        // 14.88 Mpps 10G worst case.
        assert!(c.sustains_pps(14_880_952.0, 200e6));
        assert!(c.sustains_pps(100e6, 200e6));
        assert!(!c.sustains_pps(150e6, 200e6));
    }

    #[test]
    fn histogram_buckets() {
        let mut h = LatencyHistogram::default();
        h.record(1);
        h.record(100);
        h.record(100_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }
}
