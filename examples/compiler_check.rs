//! Compiler and architecture check use-cases: sweep the program corpus
//! across backends to build a conformance matrix (diagnosed limitations vs
//! silent mis-compilations), then probe the architecture's numeric limits.
//!
//! Run with: `cargo run --example compiler_check`

use netdebug::usecases::architecture::{probe_limits, probe_table_capacity};
use netdebug::usecases::compiler_check::check_corpus;
use netdebug_hw::{Backend, BugSpec};
use netdebug_p4::corpus;

fn main() {
    println!("=== Compiler check: corpus x backends ===\n");
    let backends = [
        Backend::reference(),
        Backend::sdnet_2018(),
        Backend::sdnet_fixed(),
    ];
    let report = check_corpus(&corpus::corpus(), &backends);
    println!("{report}");

    let silent = report.silent_bugs();
    println!("silent mis-compilations found: {}", silent.len());
    for row in silent {
        if let netdebug::usecases::compiler_check::Conformance::SilentDivergence { first, .. } =
            &row.conformance
        {
            println!("  {} on {}: {}", row.program, row.backend, first);
        }
    }

    println!("\n=== Architecture check: numeric limits of sdnet-2018 ===\n");
    let arch = probe_limits(&Backend::sdnet_2018());
    println!("{arch}");

    println!("=== Runtime capacity probe (silent truncation bug) ===\n");
    let backend = Backend::sdnet_with_bugs(
        "sdnet-cap-bug",
        vec![BugSpec::TableCapacityTruncated { factor: 4 }],
    );
    let (declared, effective) = probe_table_capacity(&backend, 256);
    println!("table declared {declared} entries; installs succeeded: {effective}");
    println!(
        "=> the backend silently provisioned 1/{} of the declared memory,",
        declared / effective.max(1)
    );
    println!("   found only by exercising the control plane — no compile error.");
}
