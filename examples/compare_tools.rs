//! Regenerates the paper's **Figure 2**: the use-case coverage matrix
//! comparing software formal verification, external network testers and
//! NetDebug. Every cell is *measured* by running capability probes (see
//! `netdebug::usecases::coverage`), not asserted.
//!
//! Run with: `cargo run --example compare_tools`

use netdebug::usecases::coverage::figure2;

fn main() {
    println!("=== Figure 2: use-case coverage by tool (measured) ===\n");
    let matrix = figure2();
    println!("{matrix}");

    println!("capability probes behind each row:");
    for row in &matrix.rows {
        println!("  {}:", row.use_case);
        for probe in &row.probes {
            println!("    - {probe}");
        }
    }

    println!();
    println!("reading the matrix:");
    println!("  * software formal verification reasons about the SPEC: full marks");
    println!("    only where the spec is the object under test;");
    println!("  * the external tester sees only the device's ports: detection");
    println!("    without localisation, and no internal state at all;");
    println!("  * NetDebug sits inside the device, so every use-case is covered.");
}
