//! Performance testing use-case: throughput, packet rate and latency
//! measured from inside the device across a frame-size sweep (the classic
//! RFC 2544-style table), plus the NetDebug-vs-external-tester latency
//! comparison that shows why in-device timestamps matter.
//!
//! Run with: `cargo run --example perf_test`

use netdebug::session::NetDebug;
use netdebug::usecases::performance::{sweep, Pace};
use netdebug_hw::{Backend, BugSpec, Device};
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, PacketBuilder};
use netdebug_tester::{run_flow, ExternalView, FlowSpec};

fn template_for(size: usize) -> Vec<u8> {
    // `size` is the wire frame size; the generator appends a 28-byte test
    // header, so the template is size-28 bytes.
    let payload = size - 28 - 14;
    PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .payload(&vec![0x5Au8; payload])
    .build()
}

fn main() {
    println!("=== Performance testing (reflector program) ===\n");
    let sizes = [64usize, 128, 256, 512, 1024, 1518];

    // In-device sweep at line rate.
    let dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
    let mut nd = NetDebug::new(dev);
    let report = sweep(&mut nd, template_for, &sizes, 2000, Pace::LineRate);
    println!("NetDebug in-device measurement, offered = 10G line rate:");
    println!("{report}");

    // Pipeline capacity probe (back-to-back injection).
    let dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
    let mut nd = NetDebug::new(dev);
    let cap = sweep(&mut nd, template_for, &[64], 5000, Pace::BackToBack);
    println!(
        "pipeline capacity at 64B: {:.1} Mpps ({:.2}x the 10G line rate)\n",
        cap.points[0].achieved_pps / 1e6,
        cap.points[0].achieved_pps / nd.device().config().line_rate_pps(64)
    );

    // External tester view of the same device: latency includes the MACs.
    let mut dev = Device::deploy_source(&Backend::reference(), corpus::REFLECTOR).unwrap();
    let mut view = ExternalView::attach(&mut dev);
    let flow = run_flow(
        &mut view,
        &FlowSpec {
            template: template_for(256),
            count: 1000,
            ingress: 0,
            vary_byte: None,
        },
    );
    let in_device_ns = report
        .points
        .iter()
        .find(|p| p.frame_bytes == 256)
        .unwrap()
        .latency_ns_avg;
    println!("latency for 256B frames:");
    println!(
        "  external tester (incl. MAC/PHY): {:>8.1} ns",
        flow.latency_avg_ns
    );
    println!(
        "  NetDebug (pipeline only):        {:>8.1} ns",
        in_device_ns
    );
    println!(
        "  surrounding hardware overhead:   {:>8.1} ns\n",
        flow.latency_avg_ns - in_device_ns
    );

    // A performance bug invisible to functional tests: +150 cycles latency.
    let buggy = Backend::sdnet_with_bugs("slow", vec![BugSpec::ExtraLatency { cycles: 150 }]);
    let dev = Device::deploy_source(&buggy, corpus::REFLECTOR).unwrap();
    let mut nd = NetDebug::new(dev);
    let slow = sweep(&mut nd, template_for, &[256], 1000, Pace::Pps(1e6));
    println!(
        "latency bug detection: buggy backend shows {:.1} cycles vs {:.1} reference",
        slow.points[0].latency_cycles_avg,
        report
            .points
            .iter()
            .find(|p| p.frame_bytes == 256)
            .unwrap()
            .latency_cycles_avg,
    );
    println!("(the +150-cycle regression is attributed to the pipeline, not the MACs)");
}
