//! External-tester capture workflow: run a flow against the device and dump
//! everything the tester saw — both directions — to a Wireshark-readable
//! pcap file. Contrast the capture of a healthy deployment with a buggy
//! one: the pcap of the SDNet device contains frames that must not exist.
//!
//! Run with: `cargo run --example pcap_capture`

use netdebug_hw::{Backend, Device};
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder, PcapWriter};
use netdebug_tester::{run_flow_capturing, ExternalView, FlowSpec};
use std::fs::File;

fn router(backend: &Backend) -> Device {
    let mut dev = Device::deploy_source(backend, corpus::IPV4_FORWARD).unwrap();
    dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    dev
}

fn malformed() -> Vec<u8> {
    let mut f = PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
    .udp(1111, 2222)
    .payload(b"must be dropped")
    .build();
    f[14] = 0x55;
    f
}

fn capture(backend: &Backend, path: &str) -> std::io::Result<u64> {
    let mut dev = router(backend);
    let mut view = ExternalView::attach(&mut dev);
    let mut pcap = PcapWriter::new(File::create(path)?)?;
    let report = run_flow_capturing(
        &mut view,
        &FlowSpec {
            template: malformed(),
            count: 20,
            ingress: 0,
            vary_byte: None,
        },
        &mut pcap,
    )?;
    let frames = pcap.packet_count();
    pcap.finish()?;
    println!(
        "{path}: {} frames captured (sent {}, device emitted {})",
        frames,
        report.sent,
        frames - report.sent as u64
    );
    Ok(frames)
}

fn main() -> std::io::Result<()> {
    println!("=== pcap capture: malformed traffic against two deployments ===\n");
    let reference = capture(&Backend::reference(), "/tmp/netdebug-reference.pcap")?;
    let buggy = capture(&Backend::sdnet_2018(), "/tmp/netdebug-sdnet2018.pcap")?;

    println!("\nreference capture: only the 20 transmitted frames (all dropped");
    println!("by the parser, nothing came back).");
    println!(
        "sdnet-2018 capture: {} frames — every malformed packet came",
        buggy
    );
    println!("back out. Open the files in Wireshark to inspect the evidence.");

    assert_eq!(reference, 20);
    assert_eq!(buggy, 40);
    Ok(())
}
