//! Status monitoring use-case: periodic internal status of a running
//! device — per-stage packet counters, port statistics, table occupancy —
//! sampled over the register bus while traffic flows, including detection
//! of idle stages (dead logic or coverage holes).
//!
//! Run with: `cargo run --example status_monitor`

use netdebug::generator::{Expectation, StreamSpec};
use netdebug::session::NetDebug;
use netdebug::usecases::resources::quantify;
use netdebug::usecases::status::monitor;
use netdebug_hw::{Backend, Device};
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

fn main() {
    println!("=== Status monitoring (IPv4 router under mixed traffic) ===\n");
    let mut dev = Device::deploy_source(&Backend::reference(), corpus::IPV4_FORWARD).unwrap();
    dev.install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    let mut nd = NetDebug::new(dev);

    let routable = PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
    .udp(1, 2)
    .payload(b"live traffic")
    .build();

    let traffic = StreamSpec {
        stream: 1,
        template: routable,
        count: 400,
        rate_pps: Some(2e6),
        as_port: 0,
        sweeps: vec![],
        expect: Expectation::Forward { port: Some(1) },
    };

    let timeline = monitor(&mut nd, &traffic, 8);
    println!("samples taken: {}", timeline.samples.len());
    println!(
        "\n{:<12} {:>10} {:>14} {:>14} {:>14}",
        "cycle", "injected", "parser:start", "ipv4_lpm", "egress"
    );
    for s in &timeline.samples {
        let stage = |name: &str| {
            s.stages
                .iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>14}",
            s.at_cycle,
            s.injected,
            stage("parser:start"),
            stage("ipv4_lpm"),
            stage("egress"),
        );
    }

    println!("\nstage deltas over the run:");
    for (name, delta) in timeline.stage_deltas() {
        println!("  {name:<24} +{delta}");
    }
    let idle = timeline.idle_stages();
    if idle.is_empty() {
        println!("\nno idle stages — test traffic covered the whole pipeline");
    } else {
        println!("\nidle stages (never saw a packet): {idle:?}");
        println!("=> dead logic, or a hole in the test coverage");
    }

    // Table occupancy and hit/miss ratios from the last sample.
    let last = timeline.samples.last().unwrap();
    println!("\ntable status:");
    for (name, occ, cap, hits, misses) in &last.tables {
        println!("  {name}: {occ}/{cap} entries, {hits} hits, {misses} misses");
    }

    // The resources view of the same program (what the board spends on it).
    println!("\n=== Resources quantification (whole corpus) ===\n");
    let programs: Vec<(&str, &str)> = corpus::corpus()
        .iter()
        .map(|p| (p.name, p.source))
        .collect::<Vec<_>>();
    println!("{}", quantify(programs));
}
