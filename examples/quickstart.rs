//! Quickstart: deploy a P4 router on the simulated board, install routes,
//! and validate it with NetDebug — the end-to-end path of the paper's
//! Figure 1.
//!
//! Run with: `cargo run --example quickstart`

use netdebug::generator::{Expectation, StreamSpec};
use netdebug::session::NetDebug;
use netdebug_hw::Backend;
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

fn main() {
    // 1. Compile the paper's case-study program (an IPv4 router whose
    //    parser rejects malformed packets) and deploy it on the simulated
    //    NetFPGA SUME with the *reference* (faithful) backend.
    let mut nd = NetDebug::deploy(&Backend::reference(), corpus::IPV4_FORWARD)
        .expect("deploys on the reference backend");

    println!("=== NetDebug quickstart ===");
    println!(
        "device: {} ports @ {:.0} MHz, program `{}` via `{}`",
        nd.device().config().ports,
        nd.device().config().core_clock_hz / 1e6,
        nd.device().compiled().program.name,
        nd.device().compiled().backend_name,
    );

    // The instantiated architecture (Figure 1): every pipeline stage has a
    // tap counter readable over the register bus.
    println!("\npipeline stages (tap points):");
    for name in nd.device().stage_names() {
        println!("  - {name}");
    }
    println!("\nregister map (first entries):");
    for (name, addr) in nd.device().reg_map().into_iter().take(8) {
        println!("  {addr:#06x}  {name}");
    }

    // 2. Install forwarding state through the control plane.
    nd.device_mut()
        .install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    nd.device_mut()
        .install_lpm("ipv4_lpm", 0x0A01_0000, 16, "ipv4_forward", vec![0xBB, 2])
        .unwrap();
    println!("\ninstalled routes: 10.0.0.0/8 -> port 1, 10.1.0.0/16 -> port 2");

    // 3. Program two test streams: well-formed packets that must forward,
    //    and malformed packets (IPv4 version 5) that the parser must drop.
    let good = PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 1, 2, 3))
    .udp(5000, 5001)
    .payload(b"netdebug quickstart")
    .build();
    let mut bad = good.clone();
    bad[14] = 0x55; // version 5

    let report = nd.run_session(&[
        StreamSpec {
            stream: 1,
            template: good,
            count: 1000,
            rate_pps: Some(5e6),
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Forward { port: Some(2) },
        },
        StreamSpec {
            stream: 2,
            template: bad,
            count: 1000,
            rate_pps: Some(5e6),
            as_port: 0,
            sweeps: vec![],
            expect: Expectation::Drop,
        },
    ]);

    // 4. Collect results over the register interface.
    println!("\n{report}");
    println!("per-stage tap counters after the session:");
    for (name, count) in nd
        .device()
        .stage_names()
        .to_vec()
        .iter()
        .zip(nd.device().stage_counts())
    {
        println!("  {name:<24} {count}");
    }

    assert!(report.passed, "reference hardware must pass");
    println!("\nverdict: the data plane behaves as specified. Try the");
    println!("`reject_bug_hunt` example to see what a buggy backend looks like.");
}
