//! The paper's §4 case study, reproduced end to end: the Xilinx SDNet
//! toolchain silently failed to implement the P4 `reject` parser state, so
//! "any packet coming into the data plane was sent out to the next hop,
//! even if it was supposed to be dropped". Three tools look at the same
//! deployment:
//!
//! 1. **Spec-level formal verification** (the p4v role) — passes the
//!    program, because the program *is* correct;
//! 2. an **external tester** (the OSNT role) — notices a packet that should
//!    have died, but cannot say where or why;
//! 3. **NetDebug** — catches the violation on the first packet and
//!    localises it inside the parser.
//!
//! Run with: `cargo run --example reject_bug_hunt`

use netdebug::generator::{Expectation, StreamSpec};
use netdebug::localize::localize;
use netdebug::session::NetDebug;
use netdebug_hw::{Backend, Device};
use netdebug_p4::corpus;
use netdebug_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netdebug_tester::{check_forwarding, ExternalView};
use netdebug_verify::{verify, Options};

fn malformed_packet() -> Vec<u8> {
    let mut f = PacketBuilder::ethernet(
        EthernetAddress::new(2, 0, 0, 0, 0, 1),
        EthernetAddress::new(2, 0, 0, 0, 0, 2),
    )
    .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 9))
    .udp(4000, 4001)
    .payload(b"should never reach the wire")
    .build();
    f[14] = 0x55; // IPv4 version=5: parse_ipv4 must take the reject edge
    f
}

fn main() {
    println!("=== Hunting the SDNet reject bug ===\n");

    // --- Step 1: formal verification of the specification -------------
    let ir = netdebug_p4::compile(corpus::IPV4_FORWARD).unwrap();
    let report = verify(&ir, Options::default());
    println!(
        "[p4v-style verifier] paths explored: {}",
        report.paths_explored
    );
    println!(
        "[p4v-style verifier] findings: {} — the program is {}",
        report.findings.len(),
        if report.verified() {
            "CORRECT"
        } else {
            "buggy"
        }
    );
    println!(
        "[p4v-style verifier] certifies {} parser reject path(s) drop packets\n",
        report.reject_paths
    );
    assert!(report.verified());

    // --- Step 2: deploy on the 2018 SDNet toolchain -------------------
    // The compile SUCCEEDS: the bug is silent.
    let mut device = Device::deploy(&Backend::sdnet_2018(), &ir).unwrap();
    device
        .install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    println!(
        "[sdnet-2018] compile ok, {} LUTs, {} BRAM36 — no warnings, no errors\n",
        device.compiled().resources.total_luts(),
        device.compiled().resources.total_bram36()
    );

    // --- Step 3: the external tester's view ---------------------------
    let malformed = malformed_packet();
    {
        let mut view = ExternalView::attach(&mut device);
        match check_forwarding(&mut view, 0, &malformed, None) {
            Ok(()) => println!("[external tester] drop behaviour looks fine"),
            Err(e) => {
                println!("[external tester] FAILURE DETECTED: {e}");
                println!("[external tester] …but that is all it can say.\n");
            }
        }
    }

    // --- Step 4: NetDebug --------------------------------------------
    let mut nd = NetDebug::new(device);
    let session = nd.run_session(&[StreamSpec {
        stream: 1,
        template: malformed.clone(),
        count: 100,
        rate_pps: Some(1e6),
        as_port: 0,
        sweeps: vec![],
        expect: Expectation::Drop,
    }]);
    println!(
        "[netdebug] session verdict: {}",
        if session.passed { "PASS" } else { "FAIL" }
    );
    println!(
        "[netdebug] violations: {} (first: {:?})",
        session.violations.len(),
        session.violations.first().unwrap()
    );

    // Localisation: where does the packet actually go?
    let loc = localize(nd.device_mut(), 0, &malformed);
    println!("[netdebug] localisation: {loc}");

    // Contrast with the reference deployment.
    let mut reference = Device::deploy(&Backend::reference(), &ir).unwrap();
    reference
        .install_lpm("ipv4_lpm", 0x0A00_0000, 8, "ipv4_forward", vec![0xAA, 1])
        .unwrap();
    let ref_loc = localize(&mut reference, 0, &malformed);
    println!("[reference]  localisation: {ref_loc}");

    println!("\nconclusion: the specification is verified correct, yet the");
    println!("deployed data plane forwards packets it must drop. Only a tool");
    println!("inside the device — NetDebug — sees both the violation and the");
    println!("parser stage responsible. This reproduces the paper's §4 finding.");

    assert!(!session.passed);
    assert!(loc.forwarded && !ref_loc.forwarded);
}
