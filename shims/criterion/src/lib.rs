//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the `Criterion::bench_function` / `Bencher::iter` /
//! `criterion_group!` / `criterion_main!` surface. Timing is a simple
//! calibrated wall-clock loop (no statistics, no plots): run a warm-up to
//! size the batch, then report mean ns/iter over a fixed measurement
//! window on stdout.

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug)]
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Register and immediately run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            report: None,
        };
        body(&mut b);
        match b.report {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {name:<40} {ns:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("bench {name:<40} (no measurement)"),
        }
        self
    }
}

/// Runs the closed-over workload and records its timing.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `f` until the measurement window fills.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: find roughly how many calls fit in 10ms.
        let t0 = Instant::now();
        let mut calls = 0u64;
        while t0.elapsed() < Duration::from_millis(10) {
            std::hint::black_box(f());
            calls += 1;
        }
        let batch = calls.max(1);
        let mut iters = 0u64;
        let t0 = Instant::now();
        while t0.elapsed() < self.measurement {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
        }
        self.report = Some((iters, t0.elapsed()));
    }
}

/// Group benchmark functions under one runner fn, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
