//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the patterns this workspace's tests actually use, in the
//! general form `<atom><quantifier>`:
//!
//! * atoms: `\PC` (printable, no control characters), a `[...]` character
//!   class with ranges and `\n`/`\t`/`\r`/`\\` escapes, or a literal
//!   prefix;
//! * quantifiers: `*` (0..=64), `+` (1..=64), `{m,n}` (m..=n inclusive),
//!   or none (exactly the literal).
//!
//! Anything unrecognised falls back to printable ASCII soup, which is a
//! safe over-approximation for "never panics" robustness properties.

use crate::TestRng;

/// Generate one string matching (the supported subset of) `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Parsed::Literal(s) => s,
        Parsed::Class { alphabet, min, max } => {
            let len = rng.usize_inclusive(min, max);
            (0..len)
                .map(|_| alphabet[rng.below_u128(alphabet.len() as u128) as usize])
                .collect()
        }
    }
}

fn printable() -> Vec<char> {
    (0x20u8..=0x7e).map(char::from).collect()
}

/// A parsed pattern: either a verbatim literal or a sampled char class.
enum Parsed {
    Literal(String),
    Class {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    },
}

fn parse(pattern: &str) -> Parsed {
    let (atom, quant) = split_quantifier(pattern);
    let alphabet = match atom {
        r"\PC" => printable(),
        cls if cls.starts_with('[') && cls.ends_with(']') => {
            let set = char_class(&cls[1..cls.len() - 1]);
            if set.is_empty() {
                printable()
            } else {
                set
            }
        }
        lit if !lit.is_empty() && !lit.contains(['[', '\\', '*', '+', '{']) => {
            // A literal with no quantifier generates itself, verbatim.
            return Parsed::Literal(lit.to_string());
        }
        _ => printable(),
    };
    let (min, max) = match quant {
        Quant::Star => (0, 64),
        Quant::Plus => (1, 64),
        Quant::Counted(m, n) => (m, n),
        Quant::None => (1, 1),
    };
    Parsed::Class { alphabet, min, max }
}

enum Quant {
    None,
    Star,
    Plus,
    Counted(usize, usize),
}

fn split_quantifier(pattern: &str) -> (&str, Quant) {
    if let Some(stripped) = pattern.strip_suffix('*') {
        return (stripped, Quant::Star);
    }
    if let Some(stripped) = pattern.strip_suffix('+') {
        return (stripped, Quant::Plus);
    }
    if pattern.ends_with('}') {
        if let Some(open) = pattern.rfind('{') {
            let body = &pattern[open + 1..pattern.len() - 1];
            let (m, n) = match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().ok(), n.trim().parse().ok()),
                None => {
                    let v = body.trim().parse().ok();
                    (v, v)
                }
            };
            if let (Some(m), Some(n)) = (m, n) {
                return (&pattern[..open], Quant::Counted(m, n));
            }
        }
    }
    (pattern, Quant::None)
}

fn char_class(body: &str) -> Vec<char> {
    let mut out = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = match chars[i] {
            '\\' if i + 1 < chars.len() => {
                i += 1;
                match chars[i] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            }
            other => other,
        };
        // Range `a-b` (a `-` that is neither first nor last).
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let hi = chars[i + 2];
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    out.push(ch);
                }
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}
