//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy producing `Option`s of an inner strategy's values.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` roughly half the time, `None` otherwise (the real crate's
/// default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
