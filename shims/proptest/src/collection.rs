//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use core::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
