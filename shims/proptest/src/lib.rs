//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, integer/float/bool/tuple strategies,
//! [`collection::vec`], [`option::of`], a small regex-subset string
//! strategy, `prop_assert*` macros, and [`ProptestConfig`]. Generation is
//! driven by a deterministic splitmix64 RNG seeded from the test name, so
//! every run explores the same cases (reproducible CI). There is no
//! shrinking: a failing case panics with the generated inputs printed.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;

pub use strategy::{any, Any, Arbitrary, Strategy};

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestRng,
    };
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim trims that to keep the
        // heavier interpreter/device property tests fast while still
        // exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case (what `prop_assert!` produces).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", msg.into()))
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `[0, n)`; `n == 0` means the full 128-bit range.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        if n == 0 {
            self.next_u128()
        } else {
            // Modulo bias is irrelevant for test-input generation.
            self.next_u128() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below_u128((hi - lo) as u128 + 1) as usize
    }
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:{}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}
