//! Core [`Strategy`] trait and the primitive strategies.

use crate::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from the test RNG.
///
/// The real proptest `Strategy` is far richer (value trees, shrinking,
/// combinators); this shim only needs direct generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Blanket impl so `&strategy` works wherever a strategy is expected.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(0x20 + (rng.below_u128(0x5f) as u8))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $ut:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $ut as u128;
                let off = rng.below_u128(span) as $ut;
                self.start.wrapping_add(off as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // span == 0 encodes the full domain of the type.
                let span = hi.wrapping_sub(lo).wrapping_add(1) as $ut as u128;
                let off = rng.below_u128(span) as $ut;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

int_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident . $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5));

/// `&str` patterns act as regex-subset string strategies (see
/// [`crate::string`] for the supported syntax).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
