//! No-op derive macros standing in for `serde_derive` (offline build).
//!
//! Nothing in this workspace serializes values at runtime; the derives only
//! have to make `#[derive(Serialize, Deserialize)]` compile. Each derive
//! expands to nothing, which is valid: the marker traits in the `serde`
//! shim are never used as bounds.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
