//! Minimal offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! Mirrors the real crate's shape: `Serialize`/`Deserialize` are both a
//! trait (type namespace) and a derive macro (macro namespace), so
//! `use serde::{Deserialize, Serialize};` followed by
//! `#[derive(Serialize, Deserialize)]` resolves exactly as it does against
//! serde proper.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
